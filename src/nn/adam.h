#ifndef IAM_NN_ADAM_H_
#define IAM_NN_ADAM_H_

#include <vector>

#include "nn/layers.h"

namespace iam::nn {

// Adam optimizer (Kingma & Ba). Registered parameters are updated in place
// from their accumulated gradients; callers zero the gradients between steps.
class Adam {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
  };

  Adam() : Adam(Options()) {}
  explicit Adam(Options options) : options_(options) {}

  // The parameter must outlive the optimizer.
  void Register(Parameter* param);

  // One update step from the currently accumulated gradients.
  void Step();

  void ZeroGrad();

  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  double learning_rate() const { return options_.learning_rate; }
  long step_count() const { return step_; }

 private:
  struct Slot {
    Parameter* param;
    std::vector<float> m;  // first moment
    std::vector<float> v;  // second moment
  };

  Options options_;
  std::vector<Slot> slots_;
  long step_ = 0;
};

}  // namespace iam::nn

#endif  // IAM_NN_ADAM_H_
