#ifndef IAM_NN_MATRIX_H_
#define IAM_NN_MATRIX_H_

#include <algorithm>
#include <cstring>
#include <memory>
#include <new>
#include <span>

#include "util/macros.h"

namespace iam::nn {

// Dense row-major float32 matrix. This is the only tensor type the neural
// substrate needs: batches are [batch, features], weights are [out, in].
// Storage is a raw buffer with an explicit capacity so ResizeUninitialized
// can reshape without touching memory — the per-call cost that matters in
// the progressive sampler, where scratch matrices are reshaped per batch.
//
// The buffer is 64-byte aligned (kAlignment): the tiled kernels in
// kernels.h then start every matrix on a cache-line boundary, which keeps
// their vector loads from straddling lines at the buffer head. Row pointers
// are only as aligned as cols allows; the kernels use unaligned vector
// accesses and do not rely on per-row alignment.
class Matrix {
 public:
  static constexpr size_t kAlignment = 64;

  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols) : rows_(0), cols_(0) {
    IAM_CHECK(rows >= 0 && cols >= 0);
    ResizeUninitialized(rows, cols);
    Zero();
  }

  Matrix(const Matrix& other) : rows_(0), cols_(0) { *this = other; }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      ResizeUninitialized(other.rows_, other.cols_);
      // Guard the empty case: memcpy/memset with a null pointer is undefined
      // even for length 0 (the pointers are declared nonnull), and a [0, x]
      // matrix holds no buffer. Caught by IAM_SANITIZE=undefined.
      if (size() != 0) {
        std::memcpy(data_.get(), other.data_.get(), size() * sizeof(float));
      }
    }
    return *this;
  }
  Matrix(Matrix&& other) noexcept
      : rows_(other.rows_),
        cols_(other.cols_),
        capacity_(other.capacity_),
        data_(std::move(other.data_)) {
    other.rows_ = other.cols_ = 0;
    other.capacity_ = 0;
  }
  Matrix& operator=(Matrix&& other) noexcept {
    rows_ = other.rows_;
    cols_ = other.cols_;
    capacity_ = other.capacity_;
    data_ = std::move(other.data_);
    other.rows_ = other.cols_ = 0;
    other.capacity_ = 0;
    return *this;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return static_cast<size_t>(rows_) * cols_; }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  float& at(int r, int c) {
    IAM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    IAM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* row(int r) { return data_.get() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.get() + static_cast<size_t>(r) * cols_;
  }
  std::span<float> row_span(int r) { return {row(r), (size_t)cols_}; }
  std::span<const float> row_span(int r) const {
    return {row(r), (size_t)cols_};
  }

  void Zero() {
    // size() == 0 may mean no buffer at all; see operator= for the UB note.
    if (size() != 0) std::memset(data_.get(), 0, size() * sizeof(float));
  }

  // Resizes to [rows, cols], preserving the flat element prefix (vector
  // semantics: existing data up to min(old, new) flat size survives; any
  // growth is zero-filled). Use ResizeUninitialized when the contents are
  // about to be overwritten anyway.
  void Resize(int rows, int cols) {
    IAM_CHECK(rows >= 0 && cols >= 0);
    const size_t old_size = size();
    const size_t new_size = static_cast<size_t>(rows) * cols;
    if (new_size > capacity_) {
      AlignedBuffer grown(Allocate(new_size));
      if (old_size != 0) {
        std::memcpy(grown.get(), data_.get(), old_size * sizeof(float));
      }
      data_ = std::move(grown);
      capacity_ = new_size;
    }
    if (new_size > old_size) {
      std::memset(data_.get() + old_size, 0,
                  (new_size - old_size) * sizeof(float));
    }
    rows_ = rows;
    cols_ = cols;
  }

  // Resizes to [rows, cols] leaving the contents unspecified: when the
  // capacity suffices this only updates the shape, otherwise it reallocates
  // without copying or zero-filling. The hot-loop reshape for scratch
  // matrices that are fully overwritten by the caller.
  void ResizeUninitialized(int rows, int cols) {
    IAM_CHECK(rows >= 0 && cols >= 0);
    const size_t new_size = static_cast<size_t>(rows) * cols;
    if (new_size > capacity_) {
      data_.reset(Allocate(new_size));
      capacity_ = new_size;
    }
    rows_ = rows;
    cols_ = cols;
  }

 private:
  struct AlignedDeleter {
    void operator()(float* p) const {
      ::operator delete[](static_cast<void*>(p), std::align_val_t{kAlignment});
    }
  };
  using AlignedBuffer = std::unique_ptr<float[], AlignedDeleter>;

  static float* Allocate(size_t n) {
    return static_cast<float*>(
        ::operator new[](n * sizeof(float), std::align_val_t{kAlignment}));
  }

  int rows_;
  int cols_;
  size_t capacity_ = 0;
  AlignedBuffer data_;
};

}  // namespace iam::nn

#endif  // IAM_NN_MATRIX_H_
