#ifndef IAM_NN_MATRIX_H_
#define IAM_NN_MATRIX_H_

#include <cstring>
#include <span>
#include <vector>

#include "util/macros.h"

namespace iam::nn {

// Dense row-major float32 matrix. This is the only tensor type the neural
// substrate needs: batches are [batch, features], weights are [out, in].
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    IAM_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int r, int c) {
    IAM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    IAM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  std::span<float> row_span(int r) { return {row(r), (size_t)cols_}; }
  std::span<const float> row_span(int r) const {
    return {row(r), (size_t)cols_};
  }

  void Zero() { std::memset(data_.data(), 0, data_.size() * sizeof(float)); }

  // Resizes to [rows, cols] without preserving contents; reuses the buffer
  // when capacity allows (hot path in the progressive sampler).
  void Resize(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

// y = x * W^T + bias_broadcast. x: [B, in], w: [out, in], bias: [out] or
// empty, y: [B, out].
void LinearForward(const Matrix& x, const Matrix& w,
                   std::span<const float> bias, Matrix& y);

// Backward of LinearForward:
//   dx = dy * W                       (written, not accumulated)
//   dw += dy^T * x                    (accumulated)
//   dbias += column sums of dy        (accumulated)
void LinearBackward(const Matrix& x, const Matrix& w, const Matrix& dy,
                    Matrix& dx, Matrix& dw, std::span<float> dbias);

}  // namespace iam::nn

#endif  // IAM_NN_MATRIX_H_
