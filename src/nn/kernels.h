#ifndef IAM_NN_KERNELS_H_
#define IAM_NN_KERNELS_H_

#include <span>
#include <vector>

#include "nn/matrix.h"

// Dense and sparse linear kernels — the numeric substrate under every ResMADE
// conditional, training step, and progressive-sampling estimate.
//
// Two implementations coexist:
//  - *Ref kernels: the naive triple-loop originals, retained as the golden
//    semantics. Slow, obviously correct, used by the fuzz tests.
//  - the tiled kernels below: register-blocked over output strips and the
//    batch, unrolled over the reduction dimension. Every output accumulator
//    sums its reduction in the same index order as the reference, so no
//    floating-point reassociation happens and the fast kernels are
//    bit-compatible with the reference in the portable build. The IAM_NATIVE
//    build (-march=native) may contract mul+add into FMA, which can move
//    results by ULPs relative to the portable build, but fast and reference
//    kernels inside one build always agree (same expression shapes, same
//    contraction). See DESIGN.md §10.
namespace iam::nn {

// --- Reference kernels (golden semantics). --------------------------------

// y = x * W^T + bias_broadcast. x: [B, in], w: [out, in], bias: [out] or
// empty, y: [B, out].
void LinearForwardRef(const Matrix& x, const Matrix& w,
                      std::span<const float> bias, Matrix& y);

// Backward of LinearForward:
//   dx = dy * W                       (written, not accumulated)
//   dw += dy^T * x                    (accumulated)
//   dbias += column sums of dy        (accumulated)
// Rows of dy that are exactly zero contribute nothing (and are skipped).
void LinearBackwardRef(const Matrix& x, const Matrix& w, const Matrix& dy,
                       Matrix& dx, Matrix& dw, std::span<float> dbias);

// --- Tiled fast kernels. ---------------------------------------------------

// Drop-in replacement for LinearForwardRef. Large batches transpose w into
// `wt_scratch` and run the strip kernel; small batches use a row-major tile
// that amortizes the x loads over several output rows. `wt_scratch` is a
// caller-owned transpose buffer (grown on demand, reused across calls so
// steady-state batched inference pays one out*in copy per call); the kernel
// layer itself keeps no state, hidden or otherwise, so thread-safety is
// entirely the caller's scratch ownership — see DESIGN.md §11.
void LinearForward(const Matrix& x, const Matrix& w,
                   std::span<const float> bias, Matrix& y, Matrix& wt_scratch);

// Fused y = relu(x * W^T + bias): one pass, no separate pre-activation
// matrix. Bit-compatible with LinearForwardRef followed by a ReLU.
void LinearReluForward(const Matrix& x, const Matrix& w,
                       std::span<const float> bias, Matrix& y,
                       Matrix& wt_scratch);

// Strip kernel over pre-transposed weights wt: [in, out] (wt[i][o] ==
// w[o][i]). The layout every per-workspace weight cache stores; column
// strips of wt are unit-stride, so the kernel vectorizes across outputs
// without reassociating any reduction.
void LinearForwardT(const Matrix& x, const Matrix& wt,
                    std::span<const float> bias, Matrix& y);
void LinearReluForwardT(const Matrix& x, const Matrix& wt,
                        std::span<const float> bias, Matrix& y);

// Raw-pointer variant evaluating only `out` outputs starting at column
// `wt_col0` of a larger transposed weight matrix with leading dimension
// `ldw` (the per-column logits slice in ResMade::ConditionalDistribution).
// bias must have exactly `out` entries or be empty.
void LinearForwardTSlice(const Matrix& x, const float* wt, int ldw, int in,
                         int out, std::span<const float> bias, Matrix& y);

// dst = src^T; dst is resized to [src.cols, src.rows].
void TransposeInto(const Matrix& src, Matrix& dst);

// probs.row(r) = softmax(logits.row(r)) for every batch row, computed per
// row in double precision with the max subtracted (exactly the scalar
// SoftmaxInPlace recipe, in ascending index order), then narrowed to float.
// Rows are independent, so results are bitwise invariant to how a batch is
// split — the property the pooled cross-query sampler's GEMM slicing and
// prefix dedup rely on (DESIGN.md §14). probs is resized to logits' shape;
// logits and probs must not alias.
void SoftmaxRows(const Matrix& logits, Matrix& probs);

// --- Sparse input rows. ----------------------------------------------------

// CSR-style batch of sparse rows: ResMade::EncodeInput emits one entry per
// nonzero input lane (one-hot hits and embedding values), which is typically
// ~5% of the encoded width. Indices within a row are strictly increasing, so
// kernels consuming SparseRows accumulate in the same index order as a dense
// kernel would over the nonzero subset.
struct SparseRows {
  int rows = 0;
  int cols = 0;                // dense width the rows are a view of
  std::vector<int> index;      // flattened nonzero lane indices
  std::vector<float> value;    // matching values
  std::vector<int> row_begin;  // size rows + 1; row r spans
                               // [row_begin[r], row_begin[r + 1])

  void Reset(int dense_cols) {
    rows = 0;
    cols = dense_cols;
    index.clear();
    value.clear();
    row_begin.assign(1, 0);
  }
  void Push(int i, float v) {
    index.push_back(i);
    value.push_back(v);
  }
  void EndRow() {
    ++rows;
    row_begin.push_back(static_cast<int>(index.size()));
  }
};

// y_b = bias + sum_nz x[i] * wt_row(i) over transposed weights wt: [in, out];
// optionally fuses the ReLU. Skipping the zero input lanes is bitwise
// equivalent to the dense kernel because adding x[i] * w == 0 never changes
// a finite accumulator (the lone exception, an accumulator that is exactly
// -0.0f, cannot arise from the encodings we feed this kernel).
void SparseLinearForward(const SparseRows& x, const Matrix& wt,
                         std::span<const float> bias, Matrix& y,
                         bool fuse_relu);

// Drop-in replacement for LinearBackwardRef: dx is computed per batch row
// with the nonzero dy entries gathered and applied four at a time (one load
// and store of each dx lane per four gradient rows); dw/dbias are computed
// output-major so each dw row stays cache-resident across the batch. All
// per-element accumulation orders match the reference, and rows with
// dy == 0 are skipped exactly as the reference skips them.
void LinearBackward(const Matrix& x, const Matrix& w, const Matrix& dy,
                    Matrix& dx, Matrix& dw, std::span<float> dbias);

}  // namespace iam::nn

#endif  // IAM_NN_KERNELS_H_
