#include "nn/kernels.h"

#include <algorithm>
#include <cstring>

#include "util/math_util.h"

namespace iam::nn {

// --- Reference kernels (the seed implementations, kept verbatim). ----------

void LinearForwardRef(const Matrix& x, const Matrix& w,
                      std::span<const float> bias, Matrix& y) {
  const int batch = x.rows();
  const int in = x.cols();
  const int out = w.rows();
  IAM_CHECK(w.cols() == in);
  IAM_CHECK(bias.empty() || static_cast<int>(bias.size()) == out);
  y.ResizeUninitialized(batch, out);  // every element is written below

  for (int b = 0; b < batch; ++b) {
    const float* xb = x.row(b);
    float* yb = y.row(b);
    for (int o = 0; o < out; ++o) {
      const float* wo = w.row(o);
      float acc = bias.empty() ? 0.0f : bias[o];
      for (int i = 0; i < in; ++i) acc += xb[i] * wo[i];
      yb[o] = acc;
    }
  }
}

void LinearBackwardRef(const Matrix& x, const Matrix& w, const Matrix& dy,
                       Matrix& dx, Matrix& dw, std::span<float> dbias) {
  const int batch = x.rows();
  const int in = x.cols();
  const int out = w.rows();
  IAM_CHECK(dy.rows() == batch && dy.cols() == out);
  IAM_CHECK(dw.rows() == out && dw.cols() == in);
  dx.ResizeUninitialized(batch, in);
  dx.Zero();

  for (int b = 0; b < batch; ++b) {
    const float* dyb = dy.row(b);
    const float* xb = x.row(b);
    float* dxb = dx.row(b);
    for (int o = 0; o < out; ++o) {
      const float g = dyb[o];
      if (g == 0.0f) continue;
      const float* wo = w.row(o);
      float* dwo = dw.row(o);
      for (int i = 0; i < in; ++i) {
        dxb[i] += g * wo[i];
        dwo[i] += g * xb[i];
      }
      if (!dbias.empty()) dbias[o] += g;
    }
  }
}

// --- Tiled forward over transposed weights. --------------------------------

namespace {

// One batch row, one strip of kWidth outputs. The accumulators live in
// registers: kWidth independent reduction chains, each summed in ascending-i
// order (the i-loop is unrolled by two but every accumulator still receives
// its terms one after the other, so nothing is reassociated relative to the
// reference kernel). The k-loops are unit-stride with a compile-time trip
// count, which is exactly the shape the vectorizer wants.
template <int kWidth, bool kRelu>
inline void ForwardTStrip(const float* IAM_RESTRICT xb,
                          const float* IAM_RESTRICT wt, int ldw, int in,
                          const float* bias, float* IAM_RESTRICT yb) {
  float acc[kWidth];
  if (bias != nullptr) {
    for (int k = 0; k < kWidth; ++k) acc[k] = bias[k];
  } else {
    for (int k = 0; k < kWidth; ++k) acc[k] = 0.0f;
  }
  const float* wp = wt;
  int i = 0;
  for (; i + 2 <= in; i += 2) {
    const float x0 = xb[i];
    const float x1 = xb[i + 1];
    const float* IAM_RESTRICT w0 = wp;
    const float* IAM_RESTRICT w1 = wp + ldw;
    for (int k = 0; k < kWidth; ++k) {
      float a = acc[k];
      a += x0 * w0[k];
      a += x1 * w1[k];
      acc[k] = a;
    }
    wp += 2 * static_cast<size_t>(ldw);
  }
  if (i < in) {
    const float x0 = xb[i];
    for (int k = 0; k < kWidth; ++k) acc[k] += x0 * wp[k];
  }
  if (kRelu) {
    for (int k = 0; k < kWidth; ++k) yb[k] = acc[k] > 0.0f ? acc[k] : 0.0f;
  } else {
    for (int k = 0; k < kWidth; ++k) yb[k] = acc[k];
  }
}

template <bool kRelu>
void ForwardTImpl(const Matrix& x, const float* wt, int ldw, int in, int out,
                  std::span<const float> bias, Matrix& y) {
  const int batch = x.rows();
  IAM_CHECK(x.cols() == in);
  IAM_CHECK(bias.empty() || static_cast<int>(bias.size()) == out);
  y.ResizeUninitialized(batch, out);
  const float* bias_ptr = bias.empty() ? nullptr : bias.data();

  for (int b = 0; b < batch; ++b) {
    const float* xb = x.row(b);
    float* yb = y.row(b);
    int o = 0;
    for (; o + 16 <= out; o += 16) {
      ForwardTStrip<16, kRelu>(xb, wt + o, ldw, in,
                               bias_ptr ? bias_ptr + o : nullptr, yb + o);
    }
    for (; o + 4 <= out; o += 4) {
      ForwardTStrip<4, kRelu>(xb, wt + o, ldw, in,
                              bias_ptr ? bias_ptr + o : nullptr, yb + o);
    }
    for (; o < out; ++o) {  // remainder: strided column dot, still i-ordered
      float acc = bias_ptr ? bias_ptr[o] : 0.0f;
      const float* wp = wt + o;
      for (int i = 0; i < in; ++i, wp += ldw) acc += xb[i] * wp[0];
      yb[o] = kRelu ? (acc > 0.0f ? acc : 0.0f) : acc;
    }
  }
}

// Small-batch path over row-major weights: four output rows share each load
// of xb[i], giving four independent reduction chains without any transpose.
template <bool kRelu>
void ForwardSmallImpl(const Matrix& x, const Matrix& w,
                      std::span<const float> bias, Matrix& y) {
  const int batch = x.rows();
  const int in = x.cols();
  const int out = w.rows();
  y.ResizeUninitialized(batch, out);
  const float* bias_ptr = bias.empty() ? nullptr : bias.data();

  for (int b = 0; b < batch; ++b) {
    const float* IAM_RESTRICT xb = x.row(b);
    float* yb = y.row(b);
    int o = 0;
    for (; o + 4 <= out; o += 4) {
      const float* IAM_RESTRICT w0 = w.row(o);
      const float* IAM_RESTRICT w1 = w.row(o + 1);
      const float* IAM_RESTRICT w2 = w.row(o + 2);
      const float* IAM_RESTRICT w3 = w.row(o + 3);
      float a0 = bias_ptr ? bias_ptr[o] : 0.0f;
      float a1 = bias_ptr ? bias_ptr[o + 1] : 0.0f;
      float a2 = bias_ptr ? bias_ptr[o + 2] : 0.0f;
      float a3 = bias_ptr ? bias_ptr[o + 3] : 0.0f;
      for (int i = 0; i < in; ++i) {
        const float xv = xb[i];
        a0 += xv * w0[i];
        a1 += xv * w1[i];
        a2 += xv * w2[i];
        a3 += xv * w3[i];
      }
      if (kRelu) {
        yb[o] = a0 > 0.0f ? a0 : 0.0f;
        yb[o + 1] = a1 > 0.0f ? a1 : 0.0f;
        yb[o + 2] = a2 > 0.0f ? a2 : 0.0f;
        yb[o + 3] = a3 > 0.0f ? a3 : 0.0f;
      } else {
        yb[o] = a0;
        yb[o + 1] = a1;
        yb[o + 2] = a2;
        yb[o + 3] = a3;
      }
    }
    for (; o < out; ++o) {
      const float* wo = w.row(o);
      float acc = bias_ptr ? bias_ptr[o] : 0.0f;
      for (int i = 0; i < in; ++i) acc += xb[i] * wo[i];
      yb[o] = kRelu ? (acc > 0.0f ? acc : 0.0f) : acc;
    }
  }
}

// Below this batch size the transpose is not worth amortizing and the
// row-major small-batch tile wins.
constexpr int kTransposeBatchThreshold = 8;

template <bool kRelu>
void ForwardDispatch(const Matrix& x, const Matrix& w,
                     std::span<const float> bias, Matrix& y,
                     Matrix& wt_scratch) {
  IAM_CHECK(w.cols() == x.cols());
  IAM_CHECK(bias.empty() || static_cast<int>(bias.size()) == w.rows());
  if (x.rows() >= kTransposeBatchThreshold) {
    // Caller-owned transpose scratch: reused across calls, so steady-state
    // batched inference pays one out*in copy per call (<1% of the GEMM).
    TransposeInto(w, wt_scratch);
    ForwardTImpl<kRelu>(x, wt_scratch.data(), wt_scratch.cols(), x.cols(),
                        w.rows(), bias, y);
  } else {
    ForwardSmallImpl<kRelu>(x, w, bias, y);
  }
}

}  // namespace

void LinearForward(const Matrix& x, const Matrix& w,
                   std::span<const float> bias, Matrix& y,
                   Matrix& wt_scratch) {
  ForwardDispatch<false>(x, w, bias, y, wt_scratch);
}

void LinearReluForward(const Matrix& x, const Matrix& w,
                       std::span<const float> bias, Matrix& y,
                       Matrix& wt_scratch) {
  ForwardDispatch<true>(x, w, bias, y, wt_scratch);
}

void LinearForwardT(const Matrix& x, const Matrix& wt,
                    std::span<const float> bias, Matrix& y) {
  ForwardTImpl<false>(x, wt.data(), wt.cols(), wt.rows(), wt.cols(), bias, y);
}

void LinearReluForwardT(const Matrix& x, const Matrix& wt,
                        std::span<const float> bias, Matrix& y) {
  ForwardTImpl<true>(x, wt.data(), wt.cols(), wt.rows(), wt.cols(), bias, y);
}

void LinearForwardTSlice(const Matrix& x, const float* wt, int ldw, int in,
                         int out, std::span<const float> bias, Matrix& y) {
  IAM_CHECK(ldw >= out);
  ForwardTImpl<false>(x, wt, ldw, in, out, bias, y);
}

void SoftmaxRows(const Matrix& logits, Matrix& probs) {
  const int rows = logits.rows();
  const int cols = logits.cols();
  IAM_CHECK(&logits != &probs);
  probs.ResizeUninitialized(rows, cols);
  std::vector<double> scratch(static_cast<size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    const float* lrow = logits.row(r);
    scratch.assign(lrow, lrow + cols);
    SoftmaxInPlace(scratch);
    float* prow = probs.row(r);
    for (int j = 0; j < cols; ++j) prow[j] = static_cast<float>(scratch[j]);
  }
}

void TransposeInto(const Matrix& src, Matrix& dst) {
  const int rows = src.rows();
  const int cols = src.cols();
  dst.ResizeUninitialized(cols, rows);
  const float* IAM_RESTRICT s = src.data();
  float* IAM_RESTRICT d = dst.data();
  for (int r = 0; r < rows; ++r) {
    const float* srow = s + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) {
      d[static_cast<size_t>(c) * rows + r] = srow[c];
    }
  }
}

// --- Sparse forward. -------------------------------------------------------

void SparseLinearForward(const SparseRows& x, const Matrix& wt,
                         std::span<const float> bias, Matrix& y,
                         bool fuse_relu) {
  const int in = wt.rows();
  const int out = wt.cols();
  IAM_CHECK(x.cols == in);
  IAM_CHECK(static_cast<int>(x.row_begin.size()) == x.rows + 1);
  IAM_CHECK(bias.empty() || static_cast<int>(bias.size()) == out);
  y.ResizeUninitialized(x.rows, out);

  for (int r = 0; r < x.rows; ++r) {
    float* IAM_RESTRICT yb = y.row(r);
    if (bias.empty()) {
      std::memset(yb, 0, static_cast<size_t>(out) * sizeof(float));
    } else {
      std::memcpy(yb, bias.data(), static_cast<size_t>(out) * sizeof(float));
    }
    const int end = x.row_begin[r + 1];
    for (int nz = x.row_begin[r]; nz < end; ++nz) {
      const int lane = x.index[nz];
      IAM_DCHECK(lane >= 0 && lane < in);
      const float v = x.value[nz];
      const float* IAM_RESTRICT wr = wt.row(lane);
      for (int o = 0; o < out; ++o) yb[o] += v * wr[o];
    }
    if (fuse_relu) {
      for (int o = 0; o < out; ++o) yb[o] = yb[o] > 0.0f ? yb[o] : 0.0f;
    }
  }
}

// --- Tiled backward. -------------------------------------------------------

namespace {

// dst += g0*w0 + g1*w1 + g2*w2 + g3*w3, each product added in gradient-row
// order so every dst lane sees the same addition sequence as the reference.
inline void Saxpy4(float* IAM_RESTRICT dst, const float g[4],
                   const float* const wrows[4], int n) {
  const float* IAM_RESTRICT w0 = wrows[0];
  const float* IAM_RESTRICT w1 = wrows[1];
  const float* IAM_RESTRICT w2 = wrows[2];
  const float* IAM_RESTRICT w3 = wrows[3];
  const float g0 = g[0], g1 = g[1], g2 = g[2], g3 = g[3];
  for (int i = 0; i < n; ++i) {
    float v = dst[i];
    v += g0 * w0[i];
    v += g1 * w1[i];
    v += g2 * w2[i];
    v += g3 * w3[i];
    dst[i] = v;
  }
}

inline void Saxpy1(float* IAM_RESTRICT dst, float g,
                   const float* IAM_RESTRICT w, int n) {
  for (int i = 0; i < n; ++i) dst[i] += g * w[i];
}

}  // namespace

void LinearBackward(const Matrix& x, const Matrix& w, const Matrix& dy,
                    Matrix& dx, Matrix& dw, std::span<float> dbias) {
  const int batch = x.rows();
  const int in = x.cols();
  const int out = w.rows();
  IAM_CHECK(w.cols() == in);
  IAM_CHECK(dy.rows() == batch && dy.cols() == out);
  IAM_CHECK(dw.rows() == out && dw.cols() == in);
  IAM_CHECK(dbias.empty() || static_cast<int>(dbias.size()) == out);
  dx.ResizeUninitialized(batch, in);
  dx.Zero();

  // Pass 1 — dx = dy * W. The nonzero gradients of each batch row (ReLU
  // leaves dy about half zeros) are staged four at a time, so each dx lane
  // is loaded and stored once per four gradient rows instead of once each.
  for (int b = 0; b < batch; ++b) {
    const float* dyb = dy.row(b);
    float* dxb = dx.row(b);
    float g[4];
    const float* wrows[4];
    int staged = 0;
    for (int o = 0; o < out; ++o) {
      if (dyb[o] == 0.0f) continue;
      g[staged] = dyb[o];
      wrows[staged] = w.row(o);
      if (++staged == 4) {
        Saxpy4(dxb, g, wrows, in);
        staged = 0;
      }
    }
    for (int s = 0; s < staged; ++s) Saxpy1(dxb, g[s], wrows[s], in);
  }

  // Pass 2 — dw += dy^T * x and dbias, output-major inside batch blocks: a
  // block of x rows stays in L1 while each dw row streams through once per
  // block. Per dw entry the contributions still arrive in ascending batch
  // order, matching the reference accumulation exactly.
  constexpr int kBatchBlock = 32;
  for (int b0 = 0; b0 < batch; b0 += kBatchBlock) {
    const int b1 = std::min(batch, b0 + kBatchBlock);
    for (int o = 0; o < out; ++o) {
      float* IAM_RESTRICT dwo = dw.row(o);
      for (int b = b0; b < b1; ++b) {
        const float g = dy.at(b, o);
        if (g == 0.0f) continue;
        const float* IAM_RESTRICT xb = x.row(b);
        for (int i = 0; i < in; ++i) dwo[i] += g * xb[i];
        if (!dbias.empty()) dbias[o] += g;
      }
    }
  }
}

}  // namespace iam::nn
