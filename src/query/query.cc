#include "query/query.h"

#include <algorithm>
#include <cstdio>

namespace iam::query {

std::string Query::DebugString(const data::Table& table) const {
  std::string out;
  char buf[128];
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    if (i > 0) out += " AND ";
    std::snprintf(buf, sizeof(buf), "%s in [%g, %g]",
                  table.column(p.column).name.c_str(), p.lo, p.hi);
    out += buf;
  }
  return out.empty() ? "TRUE" : out;
}

double TrueSelectivity(const data::Table& table, const Query& query) {
  const size_t n = table.num_rows();
  if (n == 0) return 0.0;
  size_t hits = 0;
  for (size_t r = 0; r < n; ++r) {
    bool match = true;
    for (const Predicate& p : query.predicates) {
      if (!p.Matches(table.value(r, p.column))) {
        match = false;
        break;
      }
    }
    hits += match ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

double QError(double actual, double estimate, size_t num_rows) {
  const double floor = 1.0 / static_cast<double>(std::max<size_t>(num_rows, 1));
  const double a = std::max(actual, floor);
  const double e = std::max(estimate, floor);
  return std::max(a / e, e / a);
}

}  // namespace iam::query
