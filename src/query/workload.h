#ifndef IAM_QUERY_WORKLOAD_H_
#define IAM_QUERY_WORKLOAD_H_

#include <vector>

#include "data/table.h"
#include "query/query.h"
#include "util/random.h"

namespace iam::query {

// The paper's single-table query generator (Section 6.1.3): draw a random
// non-empty subset of attributes; for a categorical attribute draw a domain
// value and an operator from {=, <=, >=}; for a continuous attribute draw a
// value uniformly between its min and max and an operator from {<=, >=}.
struct WorkloadOptions {
  int num_queries = 200;
  // Bias toward multi-attribute queries: each attribute is selected
  // independently with this probability; empty draws are retried.
  double column_prob = 0.6;
};

std::vector<Query> GenerateWorkload(const data::Table& table,
                                    const WorkloadOptions& options, Rng& rng);

// A workload with precomputed ground truth.
struct EvaluatedWorkload {
  std::vector<Query> queries;
  std::vector<double> true_selectivities;
};

EvaluatedWorkload GenerateEvaluatedWorkload(const data::Table& table,
                                            const WorkloadOptions& options,
                                            Rng& rng);

}  // namespace iam::query

#endif  // IAM_QUERY_WORKLOAD_H_
