#ifndef IAM_QUERY_QUERY_H_
#define IAM_QUERY_QUERY_H_

#include <limits>
#include <string>
#include <vector>

#include "data/table.h"

namespace iam::query {

// An interval predicate on one attribute: value in [lo, hi] (both bounds
// inclusive). All supported operators reduce to intervals:
//   A = v   -> [v, v]
//   A <= v  -> [-inf, v]       A < v  -> [-inf, prev(v)]
//   A >= v  -> [v, +inf]       A > v  -> [next(v), +inf]
// (strict bounds on continuous attributes differ on a measure-zero set and
// use nextafter at the query-construction layer).
struct Predicate {
  int column = 0;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  bool Matches(double v) const { return v >= lo && v <= hi; }
};

// Conjunctive query: every predicate must hold. At most one predicate per
// column (the workload generator merges operators on the same column).
struct Query {
  std::vector<Predicate> predicates;

  std::string DebugString(const data::Table& table) const;
};

// Ground truth by full scan.
double TrueSelectivity(const data::Table& table, const Query& query);

// Q-error with the paper's floor: both selectivities are clamped to 1/|T|
// before taking max(act/est, est/act).
double QError(double actual, double estimate, size_t num_rows);

}  // namespace iam::query

#endif  // IAM_QUERY_QUERY_H_
