#include "query/parser.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

namespace iam::query {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Token {
  enum class Kind { kIdent, kNumber, kOp } kind;
  std::string text;
  double number = 0.0;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '<' || c == '>' || c == '=') {
      std::string op(1, c);
      if ((c == '<' || c == '>') && i + 1 < text.size() &&
          text[i + 1] == '=') {
        op += '=';
        ++i;
      }
      tokens.push_back({Token::Kind::kOp, op, 0.0});
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+' || c == '.') {
      char* end = nullptr;
      const double value = std::strtod(text.c_str() + i, &end);
      if (end == text.c_str() + i) {
        return Status::InvalidArgument("bad number near '" +
                                       text.substr(i, 10) + "'");
      }
      tokens.push_back({Token::Kind::kNumber, "", value});
      i = end - text.c_str();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_' || text[j] == '.')) {
        ++j;
      }
      tokens.push_back({Token::Kind::kIdent, text.substr(i, j - i), 0.0});
      i = j;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") +
                                   c + "'");
  }
  return tokens;
}

}  // namespace

Result<Query> ParsePredicates(const data::Table& table,
                              const std::string& text) {
  Result<std::vector<Token>> tokens_or = Tokenize(text);
  if (!tokens_or.ok()) return tokens_or.status();
  const std::vector<Token>& tokens = *tokens_or;

  // Accumulate per-column intervals, then emit one predicate per column.
  std::vector<double> lo(table.num_columns(), -kInf);
  std::vector<double> hi(table.num_columns(), kInf);
  std::vector<bool> touched(table.num_columns(), false);

  size_t i = 0;
  bool expect_predicate = true;
  while (i < tokens.size()) {
    if (!expect_predicate) {
      if (tokens[i].kind != Token::Kind::kIdent ||
          Upper(tokens[i].text) != "AND") {
        return Status::InvalidArgument("expected AND near '" +
                                       tokens[i].text + "'");
      }
      ++i;
      expect_predicate = true;
      continue;
    }
    if (tokens[i].kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected a column name");
    }
    const int col = table.ColumnIndex(tokens[i].text);
    if (col < 0) {
      return Status::NotFound("unknown column '" + tokens[i].text + "'");
    }
    ++i;
    if (i >= tokens.size()) {
      return Status::InvalidArgument("dangling column reference");
    }
    const bool continuous =
        table.column(col).type == data::ColumnType::kContinuous;
    touched[col] = true;

    // BETWEEN a AND b.
    if (tokens[i].kind == Token::Kind::kIdent &&
        Upper(tokens[i].text) == "BETWEEN") {
      if (i + 3 >= tokens.size() ||
          tokens[i + 1].kind != Token::Kind::kNumber ||
          Upper(tokens[i + 2].text) != "AND" ||
          tokens[i + 3].kind != Token::Kind::kNumber) {
        return Status::InvalidArgument("malformed BETWEEN");
      }
      lo[col] = std::max(lo[col], tokens[i + 1].number);
      hi[col] = std::min(hi[col], tokens[i + 3].number);
      i += 4;
      expect_predicate = false;
      continue;
    }

    if (tokens[i].kind != Token::Kind::kOp) {
      return Status::InvalidArgument("expected an operator after '" +
                                     table.column(col).name + "'");
    }
    const std::string op = tokens[i].text;
    ++i;
    if (i >= tokens.size() || tokens[i].kind != Token::Kind::kNumber) {
      return Status::InvalidArgument("expected a numeric literal");
    }
    const double v = tokens[i].number;
    ++i;
    if (op == "=") {
      lo[col] = std::max(lo[col], v);
      hi[col] = std::min(hi[col], v);
    } else if (op == "<=") {
      hi[col] = std::min(hi[col], v);
    } else if (op == ">=") {
      lo[col] = std::max(lo[col], v);
    } else if (op == "<") {
      // Strict bound: previous representable value (continuous) or v - 1
      // (integral categorical codes).
      hi[col] = std::min(hi[col], continuous ? std::nextafter(v, -kInf)
                                             : v - 1.0);
    } else if (op == ">") {
      lo[col] = std::max(lo[col], continuous ? std::nextafter(v, kInf)
                                             : v + 1.0);
    } else {
      return Status::InvalidArgument("unsupported operator '" + op + "'");
    }
    expect_predicate = false;
  }
  if (expect_predicate) {
    return Status::InvalidArgument("empty or trailing predicate");
  }

  Query query;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!touched[c]) continue;
    query.predicates.push_back({c, lo[c], hi[c]});
  }
  return query;
}

namespace {

// Shortest decimal form that parses back (via strtod) to exactly `v`:
// max_digits10 significant digits always round-trip a double.
std::string FormatBound(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string ToString(const data::Table& table, const Query& query) {
  std::string out;
  for (const Predicate& p : query.predicates) {
    const bool lo_finite = std::isfinite(p.lo);
    const bool hi_finite = std::isfinite(p.hi);
    if (!lo_finite && !hi_finite) continue;  // unconstrained: no grammar form
    if (!out.empty()) out += " AND ";
    const std::string& name = table.column(p.column).name;
    if (lo_finite && hi_finite && p.lo == p.hi) {
      out += name + " = " + FormatBound(p.lo);
    } else if (lo_finite && hi_finite) {
      out += name + " BETWEEN " + FormatBound(p.lo) + " AND " +
             FormatBound(p.hi);
    } else if (hi_finite) {
      out += name + " <= " + FormatBound(p.hi);
    } else {
      out += name + " >= " + FormatBound(p.lo);
    }
  }
  return out;
}

}  // namespace iam::query
