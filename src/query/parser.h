#ifndef IAM_QUERY_PARSER_H_
#define IAM_QUERY_PARSER_H_

#include <string>

#include "data/table.h"
#include "query/query.h"
#include "util/status.h"

namespace iam::query {

// Parses a SQL-style conjunctive predicate string against a table's schema:
//
//   "latitude >= 35 AND latitude <= 45 AND longitude < -100"
//   "activity_code = 3 AND x BETWEEN -1.5 AND 2"
//
// Supported operators: =, <, <=, >, >=, BETWEEN..AND. Conjunctions with AND
// (case-insensitive). Strict bounds on continuous values are mapped to the
// adjacent representable double (nextafter), which differs from the closed
// interval only on a measure-zero set; on categorical codes they exclude the
// named code exactly. Multiple predicates on one column intersect.
Result<Query> ParsePredicates(const data::Table& table,
                              const std::string& text);

}  // namespace iam::query

#endif  // IAM_QUERY_PARSER_H_
