#ifndef IAM_QUERY_PARSER_H_
#define IAM_QUERY_PARSER_H_

#include <string>

#include "data/table.h"
#include "query/query.h"
#include "util/status.h"

namespace iam::query {

// Parses a SQL-style conjunctive predicate string against a table's schema:
//
//   "latitude >= 35 AND latitude <= 45 AND longitude < -100"
//   "activity_code = 3 AND x BETWEEN -1.5 AND 2"
//
// Supported operators: =, <, <=, >, >=, BETWEEN..AND. Conjunctions with AND
// (case-insensitive). Strict bounds on continuous values are mapped to the
// adjacent representable double (nextafter), which differs from the closed
// interval only on a measure-zero set; on categorical codes they exclude the
// named code exactly. Multiple predicates on one column intersect.
Result<Query> ParsePredicates(const data::Table& table,
                              const std::string& text);

// Prints a query back in the exact grammar ParsePredicates accepts — the wire
// format of the serving layer, whose text payloads rely on the round trip
// ParsePredicates(table, ToString(table, q)) == q (property-tested). Bounds
// print with max_digits10 precision, so nextafter-adjusted strict bounds
// survive the trip bit-exactly. Fully bounded intervals render as BETWEEN,
// half-open ones as <= / >=, points as =; a predicate with both bounds
// infinite constrains nothing and is omitted. A query whose predicates are
// all omitted prints as "" (which ParsePredicates rejects — the grammar has
// no empty query).
std::string ToString(const data::Table& table, const Query& query);

}  // namespace iam::query

#endif  // IAM_QUERY_PARSER_H_
