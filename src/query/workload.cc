#include "query/workload.h"

#include <limits>

namespace iam::query {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::vector<Query> GenerateWorkload(const data::Table& table,
                                    const WorkloadOptions& options, Rng& rng) {
  std::vector<Query> queries;
  queries.reserve(options.num_queries);
  const int ncols = table.num_columns();
  IAM_CHECK(ncols > 0);

  // Per-column domain bounds, computed once.
  std::vector<std::pair<double, double>> ranges(ncols);
  for (int c = 0; c < ncols; ++c) ranges[c] = table.ColumnRange(c);

  while (static_cast<int>(queries.size()) < options.num_queries) {
    Query q;
    for (int c = 0; c < ncols; ++c) {
      if (rng.Uniform() >= options.column_prob) continue;
      const auto [lo, hi] = ranges[c];
      Predicate p;
      p.column = c;
      if (table.column(c).type == data::ColumnType::kCategorical) {
        const double v = static_cast<double>(
            rng.UniformInt(static_cast<uint64_t>(hi - lo) + 1)) + lo;
        switch (rng.UniformInt(3)) {
          case 0:  // =
            p.lo = v;
            p.hi = v;
            break;
          case 1:  // <=
            p.lo = -kInf;
            p.hi = v;
            break;
          default:  // >=
            p.lo = v;
            p.hi = kInf;
            break;
        }
      } else {
        const double v = rng.Uniform(lo, hi);
        if (rng.UniformInt(2) == 0) {  // <=
          p.lo = -kInf;
          p.hi = v;
        } else {  // >=
          p.lo = v;
          p.hi = kInf;
        }
      }
      q.predicates.push_back(p);
    }
    if (q.predicates.empty()) continue;  // paper queries always filter
    queries.push_back(std::move(q));
  }
  return queries;
}

EvaluatedWorkload GenerateEvaluatedWorkload(const data::Table& table,
                                            const WorkloadOptions& options,
                                            Rng& rng) {
  EvaluatedWorkload workload;
  workload.queries = GenerateWorkload(table, options, rng);
  workload.true_selectivities.reserve(workload.queries.size());
  for (const Query& q : workload.queries) {
    workload.true_selectivities.push_back(TrueSelectivity(table, q));
  }
  return workload;
}

}  // namespace iam::query
