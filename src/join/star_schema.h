#ifndef IAM_JOIN_STAR_SCHEMA_H_
#define IAM_JOIN_STAR_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "util/random.h"

namespace iam::join {

// A star join schema: one dimension table joined by key equality to several
// fact tables (the JOB-light joins used in the paper's IMDB experiments are
// of this shape: `title` at the center, `movie_info`, `cast_info`, ... as
// satellites). Keys are integral codes stored in ordinary columns.
struct StarSchema {
  data::Table dim;
  int dim_key_col = 0;
  std::vector<data::Table> facts;
  std::vector<int> fact_key_cols;

  int num_fact_tables() const { return static_cast<int>(facts.size()); }
};

// Materializes the inner join of the star (all facts joined to the
// dimension). Key columns are dropped; the output columns are the dimension's
// non-key columns followed by each fact's non-key columns, names prefixed
// with the source table name. Ground truth for the join experiments.
data::Table MaterializeJoin(const StarSchema& schema);

// Number of rows of the materialized join, computed without materializing:
// sum over keys of the product of per-fact match counts.
double JoinCardinality(const StarSchema& schema);

// Exact-weight join sampler (Zhao et al., adapted to the star shape): a
// dimension row is drawn with probability proportional to the product of its
// match counts in every fact table, then one matching row is drawn uniformly
// from each fact. The resulting tuples are i.i.d. uniform over the join —
// NeuroCard's recipe for AR training data on joins.
class ExactWeightSampler {
 public:
  explicit ExactWeightSampler(const StarSchema& schema);

  // Draws `rows` join tuples; same column layout as MaterializeJoin.
  data::Table Sample(size_t rows, Rng& rng) const;

  double total_weight() const { return total_weight_; }

 private:
  const StarSchema& schema_;
  // Per dimension row: indices of matching rows in each fact table.
  std::vector<std::vector<std::vector<size_t>>> matches_;  // [fact][dim_row]
  std::vector<double> weights_;  // per dimension row
  double total_weight_ = 0.0;
};

// Source of each column of the materialized join / join sample, in output
// order: `table` is -1 for the dimension, otherwise the fact index; `column`
// indexes into the source table.
struct JoinColumnSource {
  int table;
  int column;
};
std::vector<JoinColumnSource> JoinColumns(const StarSchema& schema);

// Synthetic IMDB-like star schema (DESIGN.md §4): `title` carries TWI-style
// latitude/longitude plus categorical kind/production decade; `movie_info`
// carries WISDM-style x/y/z sensor-like continuous columns; `cast_info`
// carries role and age. Fanouts are Zipf-skewed and correlated with `kind`.
StarSchema MakeSynImdb(size_t titles, uint64_t seed);

}  // namespace iam::join

#endif  // IAM_JOIN_STAR_SCHEMA_H_
