#include "join/star_schema.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/macros.h"

namespace iam::join {
namespace {

// Output schema helper: dimension non-key columns then fact non-key columns.
struct JoinLayout {
  struct Source {
    bool from_dim;
    int fact;    // valid when !from_dim
    int column;  // column in the source table
  };
  std::vector<data::Column> columns;  // empty values, names/types set
  std::vector<Source> sources;
};

JoinLayout MakeLayout(const StarSchema& schema) {
  JoinLayout layout;
  auto add = [&](const data::Table& table, int key_col, bool from_dim,
                 int fact) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c == key_col) continue;
      data::Column col;
      col.name = table.name() + "." + table.column(c).name;
      col.type = table.column(c).type;
      layout.columns.push_back(std::move(col));
      layout.sources.push_back({from_dim, fact, c});
    }
  };
  add(schema.dim, schema.dim_key_col, /*from_dim=*/true, -1);
  for (int f = 0; f < schema.num_fact_tables(); ++f) {
    add(schema.facts[f], schema.fact_key_cols[f], /*from_dim=*/false, f);
  }
  return layout;
}

// Per fact table: dim row index -> matching fact row indices.
std::vector<std::vector<std::vector<size_t>>> BuildMatches(
    const StarSchema& schema) {
  // Key value -> dim row.
  std::unordered_map<double, size_t> key_to_dim;
  key_to_dim.reserve(schema.dim.num_rows());
  for (size_t r = 0; r < schema.dim.num_rows(); ++r) {
    const double key = schema.dim.value(r, schema.dim_key_col);
    IAM_CHECK_MSG(!key_to_dim.contains(key), "duplicate dimension key");
    key_to_dim[key] = r;
  }

  std::vector<std::vector<std::vector<size_t>>> matches(
      schema.num_fact_tables(),
      std::vector<std::vector<size_t>>(schema.dim.num_rows()));
  for (int f = 0; f < schema.num_fact_tables(); ++f) {
    const data::Table& fact = schema.facts[f];
    const int key_col = schema.fact_key_cols[f];
    for (size_t r = 0; r < fact.num_rows(); ++r) {
      const auto it = key_to_dim.find(fact.value(r, key_col));
      if (it == key_to_dim.end()) continue;  // dangling FK: drops from join
      matches[f][it->second].push_back(r);
    }
  }
  return matches;
}

}  // namespace

std::vector<JoinColumnSource> JoinColumns(const StarSchema& schema) {
  const JoinLayout layout = MakeLayout(schema);
  std::vector<JoinColumnSource> sources;
  sources.reserve(layout.sources.size());
  for (const auto& src : layout.sources) {
    sources.push_back({src.from_dim ? -1 : src.fact, src.column});
  }
  return sources;
}

double JoinCardinality(const StarSchema& schema) {
  const auto matches = BuildMatches(schema);
  double total = 0.0;
  for (size_t d = 0; d < schema.dim.num_rows(); ++d) {
    double product = 1.0;
    for (int f = 0; f < schema.num_fact_tables(); ++f) {
      product *= static_cast<double>(matches[f][d].size());
      if (product == 0.0) break;
    }
    total += product;
  }
  return total;
}

data::Table MaterializeJoin(const StarSchema& schema) {
  const auto matches = BuildMatches(schema);
  JoinLayout layout = MakeLayout(schema);
  data::Table out("join");

  // Enumerate the cross product of matches per dimension row.
  const int nf = schema.num_fact_tables();
  std::vector<size_t> pick(nf, 0);
  for (size_t d = 0; d < schema.dim.num_rows(); ++d) {
    bool any_empty = false;
    for (int f = 0; f < nf; ++f) {
      if (matches[f][d].empty()) any_empty = true;
    }
    if (any_empty) continue;
    std::fill(pick.begin(), pick.end(), 0);
    for (;;) {
      // Emit one joined row.
      size_t col_idx = 0;
      for (const auto& src : layout.sources) {
        double value;
        if (src.from_dim) {
          value = schema.dim.value(d, src.column);
        } else {
          value = schema.facts[src.fact].value(
              matches[src.fact][d][pick[src.fact]], src.column);
        }
        layout.columns[col_idx].values.push_back(value);
        ++col_idx;
      }
      // Advance the odometer.
      int f = nf - 1;
      for (; f >= 0; --f) {
        if (++pick[f] < matches[f][d].size()) break;
        pick[f] = 0;
      }
      if (f < 0) break;
    }
  }
  for (auto& col : layout.columns) out.AddColumn(std::move(col));
  IAM_CHECK(out.Validate().ok());
  return out;
}

ExactWeightSampler::ExactWeightSampler(const StarSchema& schema)
    : schema_(schema), matches_(BuildMatches(schema)) {
  weights_.resize(schema.dim.num_rows());
  for (size_t d = 0; d < schema.dim.num_rows(); ++d) {
    double product = 1.0;
    for (int f = 0; f < schema.num_fact_tables(); ++f) {
      product *= static_cast<double>(matches_[f][d].size());
      if (product == 0.0) break;
    }
    weights_[d] = product;
    total_weight_ += product;
  }
  IAM_CHECK_MSG(total_weight_ > 0.0, "empty join");
}

data::Table ExactWeightSampler::Sample(size_t rows, Rng& rng) const {
  JoinLayout layout = MakeLayout(schema_);
  for (auto& col : layout.columns) col.values.reserve(rows);

  for (size_t i = 0; i < rows; ++i) {
    const size_t d = rng.CategoricalWithSum(weights_, total_weight_);
    size_t col_idx = 0;
    std::vector<size_t> fact_rows(schema_.num_fact_tables());
    for (int f = 0; f < schema_.num_fact_tables(); ++f) {
      const auto& candidates = matches_[f][d];
      fact_rows[f] = candidates[rng.UniformInt(candidates.size())];
    }
    for (const auto& src : layout.sources) {
      double value;
      if (src.from_dim) {
        value = schema_.dim.value(d, src.column);
      } else {
        value = schema_.facts[src.fact].value(fact_rows[src.fact], src.column);
      }
      layout.columns[col_idx].values.push_back(value);
      ++col_idx;
    }
  }

  data::Table out("join_sample");
  for (auto& col : layout.columns) out.AddColumn(std::move(col));
  IAM_CHECK(out.Validate().ok());
  return out;
}

StarSchema MakeSynImdb(size_t titles, uint64_t seed) {
  Rng rng(seed);
  StarSchema schema;

  // --- title: id, kind, decade, latitude, longitude. -------------------------
  constexpr int kKinds = 6;
  // Spatial clusters as in SynTwi.
  struct City {
    double lat, lon, sig_lat, sig_lon, rho;
  };
  std::vector<City> cities(25);
  for (auto& city : cities) {
    city.lat = rng.Uniform(25.0, 49.0);
    city.lon = rng.Uniform(-124.0, -67.0);
    city.sig_lat = rng.Uniform(0.1, 0.9);
    city.sig_lon = rng.Uniform(0.1, 1.2);
    city.rho = rng.Uniform(-0.8, 0.8);
  }

  data::Column id{"id", data::ColumnType::kCategorical, {}};
  data::Column kind{"kind", data::ColumnType::kCategorical, {}};
  data::Column decade{"decade", data::ColumnType::kCategorical, {}};
  data::Column lat{"latitude", data::ColumnType::kContinuous, {}};
  data::Column lon{"longitude", data::ColumnType::kContinuous, {}};
  std::vector<int> title_kind(titles);
  for (size_t t = 0; t < titles; ++t) {
    const int k = static_cast<int>(rng.UniformInt(kKinds));
    title_kind[t] = k;
    id.values.push_back(static_cast<double>(t));
    kind.values.push_back(k);
    decade.values.push_back(static_cast<double>(192 + rng.UniformInt(11)));
    // Kind biases the city choice: correlation between kind and location.
    const City& city = cities[(rng.UniformInt(10) + 5 * k) % cities.size()];
    const double u = rng.Gaussian();
    const double v = rng.Gaussian();
    lat.values.push_back(city.lat + city.sig_lat * u);
    lon.values.push_back(
        city.lon + city.sig_lon *
                       (city.rho * u + std::sqrt(1 - city.rho * city.rho) * v));
  }
  schema.dim = data::Table("title");
  schema.dim.AddColumn(std::move(id));
  schema.dim.AddColumn(std::move(kind));
  schema.dim.AddColumn(std::move(decade));
  schema.dim.AddColumn(std::move(lat));
  schema.dim.AddColumn(std::move(lon));
  schema.dim_key_col = 0;

  // --- movie_info: title_id, info_type, x, y, z. -----------------------------
  constexpr int kInfoTypes = 10;
  double info_mean[kInfoTypes][3];
  for (auto& row : info_mean) {
    for (double& m : row) m = rng.Uniform(-9.0, 9.0);
  }
  data::Table movie_info("movie_info");
  {
    data::Column tid{"title_id", data::ColumnType::kCategorical, {}};
    data::Column itype{"info_type", data::ColumnType::kCategorical, {}};
    data::Column x{"x", data::ColumnType::kContinuous, {}};
    data::Column y{"y", data::ColumnType::kContinuous, {}};
    data::Column z{"z", data::ColumnType::kContinuous, {}};
    for (size_t t = 0; t < titles; ++t) {
      // Fanout skewed by kind: popular kinds accumulate more info rows.
      const int fanout =
          1 + static_cast<int>(rng.UniformInt(2 + 3 * title_kind[t]));
      for (int i = 0; i < fanout; ++i) {
        const int it = static_cast<int>(rng.UniformInt(kInfoTypes));
        tid.values.push_back(static_cast<double>(t));
        itype.values.push_back(it);
        x.values.push_back(rng.Gaussian(info_mean[it][0], 1.0));
        y.values.push_back(rng.Gaussian(info_mean[it][1], 1.2));
        z.values.push_back(rng.Gaussian(info_mean[it][2], 0.8));
      }
    }
    movie_info.AddColumn(std::move(tid));
    movie_info.AddColumn(std::move(itype));
    movie_info.AddColumn(std::move(x));
    movie_info.AddColumn(std::move(y));
    movie_info.AddColumn(std::move(z));
  }
  schema.facts.push_back(std::move(movie_info));
  schema.fact_key_cols.push_back(0);

  // --- cast_info: title_id, role, age. ---------------------------------------
  constexpr int kRoles = 12;
  data::Table cast_info("cast_info");
  {
    data::Column tid{"title_id", data::ColumnType::kCategorical, {}};
    data::Column role{"role", data::ColumnType::kCategorical, {}};
    data::Column age{"age", data::ColumnType::kContinuous, {}};
    for (size_t t = 0; t < titles; ++t) {
      const int fanout = 1 + static_cast<int>(rng.UniformInt(8));
      for (int i = 0; i < fanout; ++i) {
        const int r = static_cast<int>(rng.UniformInt(kRoles));
        tid.values.push_back(static_cast<double>(t));
        role.values.push_back(r);
        // Role shifts the age distribution (lead roles skew younger, etc.).
        age.values.push_back(
            std::exp(rng.Gaussian(3.2 + 0.05 * r, 0.3)) + 5.0);
      }
    }
    cast_info.AddColumn(std::move(tid));
    cast_info.AddColumn(std::move(role));
    cast_info.AddColumn(std::move(age));
  }
  schema.facts.push_back(std::move(cast_info));
  schema.fact_key_cols.push_back(0);

  IAM_CHECK(schema.dim.Validate().ok());
  for (const auto& fact : schema.facts) IAM_CHECK(fact.Validate().ok());
  return schema;
}

}  // namespace iam::join
