#ifndef IAM_CORE_PRESETS_H_
#define IAM_CORE_PRESETS_H_

#include "core/ar_density_estimator.h"

namespace iam::core {

// Paper-faithful IAM configuration (Section 6.1.2), scaled for a single-CPU
// environment: ResMADE 256-128-128-256, one GMM with `components` mixtures
// per large-domain continuous attribute, Monte-Carlo range masses.
inline ArEstimatorOptions IamDefaults(int components = 30) {
  ArEstimatorOptions opts;
  opts.use_domain_reduction = true;
  opts.reducer_kind = ReducerKind::kGmm;
  opts.reducer_components = components;
  opts.display_name = "iam";
  return opts;
}

// NeuroCard-style baseline: same AR backbone, dictionary encoding with
// column factorization (sub-column domain 2^11) instead of domain reduction,
// vanilla progressive sampling.
inline ArEstimatorOptions NeurocardDefaults() {
  ArEstimatorOptions opts;
  opts.use_domain_reduction = false;
  opts.display_name = "neurocard";
  return opts;
}

}  // namespace iam::core

#endif  // IAM_CORE_PRESETS_H_
