#ifndef IAM_CORE_AR_DENSITY_ESTIMATOR_H_
#define IAM_CORE_AR_DENSITY_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ar/resmade.h"
#include "bucketize/domain_reducer.h"
#include "bucketize/gmm_reducer.h"
#include "data/dictionary.h"
#include "data/table.h"
#include "estimator/corrector.h"
#include "estimator/estimator.h"
#include "gmm/gmm1d.h"
#include "nn/adam.h"
#include "query/query.h"
#include "util/random.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace iam::core {

// How a continuous large-domain attribute is fed to the AR model.
enum class ReducerKind {
  kGmm,        // the paper's choice (Section 4.2)
  kEquiDepth,  // Section 6.6 alternative
  kSpline,     // Section 6.6 alternative
  kUmm,        // Section 6.6 alternative
  kLaplace,    // heavier-tailed mixture (the paper's future work)
};

struct ArEstimatorOptions {
  // true  -> IAM: continuous attributes above the threshold go through a
  //          domain reducer and inference applies the bias correction.
  // false -> Naru/NeuroCard baseline: such attributes are dictionary-encoded
  //          and column-factorized; vanilla progressive sampling.
  bool use_domain_reduction = true;
  std::string display_name;  // defaults to "iam" / "neurocard"

  // Attributes with more distinct values than this are reduced (IAM) or
  // factorized (baseline). The paper uses 1000.
  size_t large_domain_threshold = 1000;

  // Autoregressive column order: a permutation of the table's column
  // indices. Empty means the natural left-to-right order, which the paper
  // (following Naru) found effective; the bench_column_order ablation
  // compares alternatives.
  std::vector<int> column_order;

  ReducerKind reducer_kind = ReducerKind::kGmm;
  int reducer_components = 30;  // paper default; <= 0 -> VBGM auto-selection
  int gmm_samples_per_component = 10000;
  bool exact_range_mass = false;  // use erf instead of Monte-Carlo masses
  int gmm_sgd_passes = 1;         // GMM SGD steps per AR batch
  double gmm_learning_rate = 5e-3;

  // Column factorization (NeuroCard): sub-column domain 2^factor_bits.
  int factor_bits = 11;

  // Training.
  int epochs = 10;
  int batch_size = 256;
  size_t max_train_rows = 1 << 20;
  double learning_rate = 1e-3;
  ar::ResMadeConfig made;

  // Inference.
  int progressive_samples = 256;
  // Worker threads for EstimateBatch and for build-time reducer fitting.
  // Estimates are bit-identical at any thread count: every query gets its own
  // deterministic Rng (seed ^ query index) and its own sampling pass.
  int num_threads = 1;

  // --- Pooled cross-query sampling (DESIGN.md §14). -------------------------
  // EstimateBatch pools every in-flight query into one sample megabatch and
  // drives column-major rounds — one large GEMM per column per round instead
  // of one small GEMM per (query, column). Bit-identical to the per-query
  // path at a fixed budget; false runs the legacy per-query oracle.
  bool pooled_sampler = true;
  // Within a round, sample rows with identical sampled prefixes (the dedup
  // key is the encoded prefix, i.e. model columns [0, round)) share one
  // conditional-distribution evaluation. Exact, not approximate: equal
  // prefixes give bitwise-equal conditionals. Counted by
  // iam_sampler_prefix_hits_total.
  bool prefix_sharing = true;
  // > 0 enables adaptive budgets in the pooled sampler: every query starts
  // with this many sample rows, the budget doubles each round, and sampling
  // stops early once the running estimate's confidence interval converges
  // (or progressive_samples is reached). Deterministic per options.seed and
  // invariant to the thread count — convergence depends only on the query's
  // own draws. 0 = fixed budget, the bit-exactness regime.
  int adaptive_min_samples = 0;
  // Early-stop rule: stop once z * stderr(mean weight) is at most
  // rel * mean + abs.
  double adaptive_ci_z = 1.96;
  double adaptive_ci_rel = 0.05;
  double adaptive_ci_abs = 1e-5;
  // Conditional probabilities at or below this floor are treated as exact
  // zeros by both sampling paths (core/sampling_utils.h floored variants).
  // 0 disables the floor bitwise; the zero-mass fallback regression tests
  // use it as a deterministic trigger.
  double min_conditional_prob = 0.0;
  // Post-estimate feedback correction (DESIGN.md §18): when true and a
  // corrector is installed (set_corrector), every estimate is multiplied by
  // the corrector's multiplier for the query's region key before being
  // returned. When false the correction loop never executes, so estimates
  // are bit-identical to a build without a corrector. Serving-side runtime
  // state — not persisted by Save/Load; the adapt subsystem re-installs the
  // corrector on every registry generation.
  bool enable_corrector = false;
  // Ablation switch: when true, the next coordinate of a reduced column is
  // drawn from the *uncorrected* AR conditional (the vanilla progressive
  // sampler the paper proves biased on IAM in Section 5.2) instead of the
  // bias-corrected product. Range factors are recorded the same way.
  bool biased_sampling = false;

  uint64_t seed = 42;
};

// The repository's central model: a ResMADE autoregressive density estimator
// over per-column encodings, covering both the paper's IAM (GMM-reduced
// domains + unbiased bias-corrected progressive sampling, Sections 4-5) and
// the Naru/NeuroCard baseline (column factorization + vanilla progressive
// sampling) depending on ArEstimatorOptions::use_domain_reduction.
class ArDensityEstimator : public estimator::Estimator {
 public:
  ArDensityEstimator(const data::Table& table, ArEstimatorOptions options);
  ~ArDensityEstimator() override;

  ArDensityEstimator(const ArDensityEstimator&) = delete;
  ArDensityEstimator& operator=(const ArDensityEstimator&) = delete;

  // Full training run (options.epochs epochs).
  void Train();

  // One epoch of joint GMM+AR SGD; returns the epoch's mean AR
  // cross-entropy. Refreshes the Monte-Carlo range-mass samples afterwards so
  // the model is queryable between epochs (Figure 6).
  double TrainEpoch();

  std::string name() const override;
  double Estimate(const query::Query& q) override;
  std::vector<double> EstimateBatch(std::span<const query::Query> qs) override;
  // Same estimates, plus per-query sampler diagnostics (DESIGN.md §17). The
  // diagnostic fields are accumulated on both sampling paths whether or not
  // a caller asks for them, so the two entry points stay bit-identical; the
  // span only controls the copy-out.
  std::vector<double> EstimateBatchDiagnosed(
      std::span<const query::Query> qs,
      std::span<estimator::QueryDiagnostics> diags) override;
  size_t SizeBytes() const override;

  // Approximate aggregation (the paper's future-work extension): estimates
  // SELECT COUNT(*), SUM(target), AVG(target) FROM T WHERE q, using the same
  // unbiased progressive sampler with the target column always materialized.
  // For a GMM-reduced target the per-sample value is the truncated component
  // mean. `table_rows` scales COUNT/SUM back to absolute units.
  struct AggregateResult {
    double selectivity = 0.0;
    double count = 0.0;
    double sum = 0.0;
    double avg = 0.0;
  };
  AggregateResult EstimateAggregate(const query::Query& q, int target_col);

  // Model persistence: everything inference needs — column metadata,
  // dictionaries, reducers, AR weights — in one binary file. Training state
  // (the row sample, optimizer moments) is not preserved; a loaded model is
  // for inference only.
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<ArDensityEstimator>> Load(
      const std::string& path);
  // Stream variant of Load: validates the checksummed envelope and every
  // payload field from `in` without touching the filesystem. This is the
  // untrusted-input surface the hot-swap path exposes (kSwap names a file,
  // but the bytes are attacker-shaped) — fuzzed in fuzz/fuzz_envelope.cc;
  // any byte stream must yield a model or a clean Status, never a crash.
  static Result<std::unique_ptr<ArDensityEstimator>> LoadFromStream(
      std::istream& in);

  // --- Introspection (tests, benches). --------------------------------------
  int num_model_columns() const;
  // Reduced domain size of a table column (its bucket count if reduced,
  // otherwise its dictionary size).
  int ReducedDomainSize(int table_col) const;
  bool IsReduced(int table_col) const;
  double last_epoch_loss() const { return last_epoch_loss_; }
  // Mean GMM negative log-likelihood over the training sample for a reduced
  // GMM column; nullopt otherwise.
  std::optional<double> GmmNll(int table_col) const;
  // Direct access to the underlying AR model and reducers (tests, ablations).
  ar::ResMade& made() { return *made_; }
  const bucketize::DomainReducer* reducer(int table_col) const {
    return columns_[table_col].reducer.get();
  }
  const ArEstimatorOptions& options() const { return options_; }
  // Flips the pooled-sampler knobs on a live estimator (bench/serve A/B
  // comparisons). Serialized against in-flight batches by the batch mutex.
  void set_sampler_mode(bool pooled, bool prefix_sharing,
                        int adaptive_min_samples);
  // Installs (or, with nullptr, removes) the post-estimate corrector and
  // sets options().enable_corrector to `enable`. Serialized against
  // in-flight batches by the batch mutex; the corrector outlives every batch
  // that can observe it via the shared_ptr. With enable == false (or no
  // corrector) the estimate path is bit-identical to an uncorrected build.
  void set_corrector(
      std::shared_ptr<const estimator::SelectivityCorrector> corrector,
      bool enable);
  // The corrector region key of a query (DESIGN.md §18): an FNV-1a hash of
  // the query's merged per-column intervals quantized onto the model's
  // grids — GMM/reducer bucket indices of the interval endpoints for reduced
  // columns, dictionary code ranges for raw/factorized columns. A pure
  // function of the query and the immutable model structure, so the same
  // query maps to the same region on every replica of a generation.
  uint64_t CorrectorRegionKey(const query::Query& q) const;
  // Source-table schema (names/types), preserved through Save/Load so a
  // reloaded model can parse predicate strings without the original data.
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  // An empty table carrying just the schema; suitable for
  // query::ParsePredicates against a loaded model.
  data::Table SchemaTable() const;

 private:
  struct TableColumn {
    enum class Kind { kRaw, kFactorized, kReduced } kind;
    data::ValueDictionary dict;  // kRaw / kFactorized
    std::unique_ptr<bucketize::DomainReducer> reducer;  // kReduced
    int first_model_col = 0;
    int num_model_cols = 1;
    int factor_base = 0;  // kFactorized: low sub-column domain size
  };

  // Per-query inference state for one table column.
  struct Constraint {
    bool active = false;
    bool impossible = false;
    int code_lo = 0;
    int code_hi = -1;
    std::vector<double> mass;  // kReduced: bias-correction vector
    double range_lo = 0.0;     // raw predicate interval (aggregation)
    double range_hi = 0.0;
  };

  // Progressive-sampling pass over one query (`progressive_samples` rows).
  struct QueryRun {
    std::vector<Constraint> constraints;
    bool dead = false;
    std::vector<std::vector<int>> samples;  // sp rows
    std::vector<double> weights;            // sp
    // Diagnostics (copied into estimator::QueryDiagnostics on request).
    uint64_t draws = 0;        // rows drawn across all AR steps
    int fallbacks = 0;         // zero-mass wildcard fallbacks
    int fallback_column = -1;  // table column of the last fallback
  };
  // Per-worker inference scratch: one AR evaluation context plus the
  // conditional-probability and gather buffers, reused across queries.
  struct InferenceScratch {
    ar::ResMade::Context ctx;
    nn::Matrix probs;
    std::vector<std::vector<int>> gather;
    std::vector<int> gather_rows;
  };
  // force_active_col >= 0 marks that table column active (full range when
  // unqueried) so its coordinate is always sampled. Const and reentrant:
  // concurrent callers need distinct rng/scratch.
  QueryRun RunQuerySampling(const query::Query& q, int force_active_col,
                            Rng& rng, InferenceScratch& scratch) const;
  // Grows the per-worker scratch vector to the pool size.
  void EnsureScratch() IAM_REQUIRES(batch_mu_);

  // One draw of a query's next coordinate for the model column owned by
  // `col` (`role` = sub-column role, `high` = the already-sampled high
  // sub-column value, used only for factorized low columns). Shared by the
  // legacy per-query and the pooled cross-query samplers so the two paths
  // are bit-identical by construction. sampled < 0 or mass <= 0 means the
  // row hit the zero-mass wildcard fallback.
  struct DrawOutcome {
    int sampled = -1;
    double mass = 0.0;
  };
  DrawOutcome DrawCoordinate(const TableColumn& col, const Constraint& con,
                             int role, int high, const float* prow,
                             Rng& rng) const;

  // One in-flight query's pooled-sampler state (DESIGN.md §14).
  struct PooledQuery {
    std::vector<Constraint> constraints;
    Rng rng{0};
    bool dead = false;
    bool done = false;          // no further sampling rounds needed
    bool early_stopped = false;
    int samples_done = 0;       // rows finished in completed waves
    double weight_sum = 0.0;
    double weight_sq = 0.0;
    // Diagnostics, accumulated per query (each draw ParallelFor iteration
    // owns one query, so these need no synchronization and their totals are
    // thread-count invariant). See DESIGN.md §17.
    uint64_t draws = 0;         // rows drawn across all (wave, column) steps
    int prefix_hits = 0;        // rows served from a shared prefix
    int fallbacks = 0;          // zero-mass wildcard fallbacks
    int fallback_column = -1;   // table column of the last fallback
    int rounds = 0;             // waves executed for this query
    int early_stop_round = -1;  // wave the CI test stopped it at
    double ci_half_width = 0.0;  // last computed CI half-width
  };
  // Buffers of the pooled cross-query sampler, cached across batches so a
  // solo Estimate() stops paying per-call allocation (the QueryRun the
  // legacy path builds per query). All row-major, flat:
  //   samples  [group_rows, M]  pooled sample matrix (M = model columns)
  //   weights  [group_rows]     running per-row likelihood weights
  struct PooledScratch {
    std::vector<PooledQuery> queries;
    std::vector<int> samples;
    std::vector<double> weights;
    std::vector<int> wildcard_row;   // per-model-column wildcard tokens
    std::vector<int> wave_queries;   // queries still sampling this wave
    std::vector<int> live_rows;      // rows gathered for the current column
    std::vector<int> draw_queries;   // queries with a non-empty segment
    std::vector<int> seg_begin;      // per draw-query range into live_rows
    std::vector<int> seg_end;
    std::vector<int> unique_of;      // live index -> unique row id
    std::vector<uint8_t> hit_of;     // live index -> 1 if prefix was shared
    std::vector<int> unique_data;    // [U, M] compacted unique rows (GEMM in)
    std::vector<uint64_t> unique_hash;
    std::vector<int> unique_next;    // dedup hash chains
    std::vector<int> bucket_head;
    std::vector<nn::Matrix> slice_probs;  // per-GEMM-slice conditionals
  };
  // Pooled EstimateBatch engine: column-major rounds over one megabatch,
  // prefix-shared conditionals, optional adaptive budgets. Processes
  // queries [q_begin, q_end) of qs into estimates (the caller splits the
  // batch into groups bounding the transient probability-matrix memory).
  // `diags` is empty or one entry per query of the *full* batch, filled for
  // [q_begin, q_end).
  void EstimateBatchPooled(std::span<const query::Query> qs, size_t q_begin,
                           size_t q_end, std::vector<double>& estimates,
                           std::span<estimator::QueryDiagnostics> diags)
      IAM_REQUIRES(batch_mu_);

  ArDensityEstimator() : rng_(0) {}  // for Load()

  // Resolves the per-column labeled counters (zero-mass wildcard fallbacks,
  // keyed by column name) once per model so the sampler hot loop is a plain
  // pointer chase. Called after column_names_ is known (ctor and Load()).
  void RegisterSamplerCounters();

  void BuildColumns(const data::Table& table);
  void BuildTrainingSample(const data::Table& table);
  void EncodeStaticColumns();
  void RefreshReducerSamples();

  std::vector<Constraint> BuildConstraints(const query::Query& q) const;

  ArEstimatorOptions options_;
  size_t table_rows_ = 0;
  std::vector<std::string> column_names_;
  std::vector<data::ColumnType> column_types_;

  std::vector<TableColumn> columns_;
  std::vector<int> model_col_owner_;  // model col -> table col
  std::vector<int> model_col_role_;   // 0 = only/high, 1 = low sub-column

  // Training sample: raw values per table column (row-major per column).
  std::vector<std::vector<double>> train_values_;
  size_t train_rows_ = 0;
  // Encoded tuples; reduced columns are re-encoded every batch while the GMM
  // is still moving.
  std::vector<std::vector<int>> encoded_;

  // One registry-owned counter per table column:
  // iam_sampler_zero_mass_fallbacks_total{column="<name>"}.
  std::vector<obs::Counter*> fallback_counters_;

  std::unique_ptr<ar::ResMade> made_;
  nn::Adam adam_;
  Rng rng_;  // training-only (sampling rows, shuffling, wildcard masking)
  double last_epoch_loss_ = 0.0;

  // One slot per pool worker. Guarded by the base class's batch mutex: the
  // batch entry points (EstimateBatch, EstimateAggregate) serialize on
  // batch_mu_, so two external callers never share a slot even though the
  // pool hands out the same worker ids to both.
  std::vector<InferenceScratch> scratch_ IAM_GUARDED_BY(batch_mu_);
  // Pooled-sampler buffers, reused across batches (same guard as scratch_).
  PooledScratch pooled_ IAM_GUARDED_BY(batch_mu_);
  // Post-estimate corrector; consulted only when options_.enable_corrector.
  std::shared_ptr<const estimator::SelectivityCorrector> corrector_
      IAM_GUARDED_BY(batch_mu_);
};

}  // namespace iam::core

#endif  // IAM_CORE_AR_DENSITY_ESTIMATOR_H_
