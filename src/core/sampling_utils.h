#ifndef IAM_CORE_SAMPLING_UTILS_H_
#define IAM_CORE_SAMPLING_UTILS_H_

#include "util/macros.h"

// Inner helpers of the progressive sampler, exposed for direct testing.
namespace iam::core::sampling {

// Sums probs[first..last] (inclusive) from a float probability row.
inline double RangeSum(const float* probs, int first, int last) {
  double sum = 0.0;
  for (int j = first; j <= last; ++j) sum += probs[j];
  return sum;
}

// Samples an index in [first, last] proportional to probs[j], given the
// precomputed sum. `u` is uniform in [0, 1).
//
// Contract: returns -1 — an explicit "no mass" flag callers must handle —
// when the range holds no positive probability (all entries zero or
// negative, or sum <= 0). When rounding makes the accumulated mass fall
// short of u * sum, the draw clamps to the last positive-probability index
// rather than walking off the range. A plain index is returned only when it
// carries positive probability. (Kept as the golden unfloored semantics; the
// samplers call the floored variants below.)
inline int SampleInRange(const float* probs, int first, int last, double sum,
                         double u) {
  IAM_DCHECK(first <= last);
  if (sum <= 0.0) return -1;
  const double target = u * sum;
  double acc = 0.0;
  int last_positive = -1;
  for (int j = first; j <= last; ++j) {
    if (probs[j] <= 0.0f) continue;
    acc += probs[j];
    last_positive = j;
    if (acc >= target) return j;
  }
  return last_positive;  // -1 iff the whole range had zero mass
}

// Floored variants: entries at or below `floor` are treated as exact zeros.
// The samplers use these when ArEstimatorOptions::min_conditional_prob > 0 —
// a numerical-hygiene knob that keeps denormal AR probabilities from leaking
// into sample weights, and the deterministic trigger the zero-mass fallback
// regression tests use. With floor == 0.0 both reduce to the plain versions
// bitwise (adding a 0.0f entry never moves a non-negative accumulator), so
// the samplers call these unconditionally with a zero floor by default.
inline double RangeSumFloored(const float* probs, int first, int last,
                              float floor) {
  double sum = 0.0;
  for (int j = first; j <= last; ++j) {
    if (probs[j] > floor) sum += probs[j];
  }
  return sum;
}

inline int SampleInRangeFloored(const float* probs, int first, int last,
                                double sum, double u, float floor) {
  IAM_DCHECK(first <= last);
  if (sum <= 0.0) return -1;
  const double target = u * sum;
  double acc = 0.0;
  int last_positive = -1;
  for (int j = first; j <= last; ++j) {
    if (probs[j] <= floor) continue;
    acc += probs[j];
    last_positive = j;
    if (acc >= target) return j;
  }
  return last_positive;
}

}  // namespace iam::core::sampling

#endif  // IAM_CORE_SAMPLING_UTILS_H_
