#ifndef IAM_CORE_SAMPLING_UTILS_H_
#define IAM_CORE_SAMPLING_UTILS_H_

#include "util/macros.h"

// Inner helpers of the progressive sampler, exposed for direct testing.
namespace iam::core::sampling {

// Sums probs[first..last] (inclusive) from a float probability row.
inline double RangeSum(const float* probs, int first, int last) {
  double sum = 0.0;
  for (int j = first; j <= last; ++j) sum += probs[j];
  return sum;
}

// Samples an index in [first, last] proportional to probs[j], given the
// precomputed sum. `u` is uniform in [0, 1).
//
// Contract: returns -1 — an explicit "no mass" flag callers must handle —
// when the range holds no positive probability (all entries zero or
// negative, or sum <= 0). When rounding makes the accumulated mass fall
// short of u * sum, the draw clamps to the last positive-probability index
// rather than walking off the range. A plain index is returned only when it
// carries positive probability.
inline int SampleInRange(const float* probs, int first, int last, double sum,
                         double u) {
  IAM_DCHECK(first <= last);
  if (sum <= 0.0) return -1;
  const double target = u * sum;
  double acc = 0.0;
  int last_positive = -1;
  for (int j = first; j <= last; ++j) {
    if (probs[j] <= 0.0f) continue;
    acc += probs[j];
    last_positive = j;
    if (acc >= target) return j;
  }
  return last_positive;  // -1 iff the whole range had zero mass
}

}  // namespace iam::core::sampling

#endif  // IAM_CORE_SAMPLING_UTILS_H_
