#include "core/ar_density_estimator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <fstream>
#include <sstream>
#include <string_view>

#include "bucketize/laplace_reducer.h"
#include "core/sampling_utils.h"
#include "gmm/laplace.h"
#include "gmm/vbgm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/serialize.h"
#include "util/math_util.h"
#include "util/stopwatch.h"

namespace iam::core {

using sampling::RangeSumFloored;
using sampling::SampleInRangeFloored;

namespace {

// Fixed GEMM slice granularity of the pooled sampler. A constant — never
// derived from the thread count — so the slice partition, the pool's
// job/index counters, and the bitwise results are all invariant to how many
// workers execute the slices (DESIGN.md §14).
constexpr int kSliceRows = 256;

// Transient conditional-matrix budget (floats) per pooled round. EstimateBatch
// splits a batch into query groups so unique_rows * max_domain stays around
// 64 MB; splitting is bit-neutral because every query's estimate depends only
// on (seed, global query index).
constexpr size_t kPooledProbBudgetFloats = size_t{16} << 20;

// Progressive-sampler and training telemetry. All of these are *semantic*
// counters: their totals depend only on (model, queries, seed), never on the
// thread count, because every query runs one deterministic sampling pass
// (see EstimateBatch). The per-column fallback counters live on the
// estimator (fallback_counters_) since their label set is per-model.
struct CoreMetrics {
  obs::Counter& sampler_queries;
  obs::Counter& sampler_samples;
  obs::Counter& sampler_dead_queries;
  obs::Counter& train_epochs;
  obs::Gauge& epoch_loss;
  obs::Histogram& epoch_seconds;

  static CoreMetrics& Get() {
    static CoreMetrics metrics = [] {
      obs::MetricRegistry& reg = obs::MetricRegistry::Global();
      return CoreMetrics{
          reg.GetCounter("iam_sampler_queries_total"),
          reg.GetCounter("iam_sampler_samples_total"),
          reg.GetCounter("iam_sampler_dead_queries_total"),
          reg.GetCounter("iam_core_train_epochs_total"),
          reg.GetGauge("iam_core_epoch_loss"),
          reg.GetHistogram("iam_core_train_epoch_seconds",
                           obs::LatencyBounds()),
      };
    }();
    return metrics;
  }
};

// Pooled-sampler telemetry (DESIGN.md §14). These are semantic too: round
// structure, prefix hits, GEMM sizes, and early stops are all functions of
// (model, queries, options, seed) alone, never of the thread count, so the
// obs determinism suite can assert them across pool sizes.
struct PooledMetrics {
  obs::Counter& prefix_hits;
  obs::Counter& gemm_rows;
  obs::Counter& early_stops;
  obs::Histogram& round_rows;       // live rows per (column, round)
  obs::Histogram& gemm_rows_hist;   // unique rows per pooled GEMM
  obs::Histogram& query_samples;    // samples a query actually used

  static PooledMetrics& Get() {
    static PooledMetrics metrics = [] {
      obs::MetricRegistry& reg = obs::MetricRegistry::Global();
      static const std::vector<double> kRowBounds = {
          1, 4, 16, 64, 256, 1024, 4096, 16384, 65536};
      static const std::vector<double> kSampleBounds = {
          8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
      return PooledMetrics{
          reg.GetCounter("iam_sampler_prefix_hits_total"),
          reg.GetCounter("iam_sampler_gemm_rows_total"),
          reg.GetCounter("iam_sampler_early_stops_total"),
          reg.GetHistogram("iam_sampler_round_rows", kRowBounds),
          reg.GetHistogram("iam_sampler_gemm_rows", kRowBounds),
          reg.GetHistogram("iam_sampler_query_samples", kSampleBounds),
      };
    }();
    return metrics;
  }
};

}  // namespace

ArDensityEstimator::ArDensityEstimator(const data::Table& table,
                                       ArEstimatorOptions options)
    : options_(std::move(options)),
      table_rows_(table.num_rows()),
      rng_(options_.seed) {
  IAM_CHECK(table.num_rows() > 0);
  IAM_CHECK(table.num_columns() >= 2);
  set_num_threads(options_.num_threads);
  for (int c = 0; c < table.num_columns(); ++c) {
    column_names_.push_back(table.column(c).name);
    column_types_.push_back(table.column(c).type);
  }
  BuildColumns(table);
  BuildTrainingSample(table);
  EncodeStaticColumns();
  RegisterSamplerCounters();

  std::vector<int> domains(model_col_owner_.size());
  for (size_t m = 0; m < model_col_owner_.size(); ++m) {
    const TableColumn& col = columns_[model_col_owner_[m]];
    switch (col.kind) {
      case TableColumn::Kind::kRaw:
        domains[m] = col.dict.size();
        break;
      case TableColumn::Kind::kReduced:
        domains[m] = col.reducer->num_buckets();
        break;
      case TableColumn::Kind::kFactorized:
        domains[m] = model_col_role_[m] == 0
                         ? (col.dict.size() + col.factor_base - 1) /
                               col.factor_base
                         : col.factor_base;
        break;
    }
    IAM_CHECK(domains[m] >= 1);
  }
  made_ = std::make_unique<ar::ResMade>(std::move(domains), options_.made,
                                        options_.seed ^ 0xabcdef12u);
  nn::Adam::Options adam_opts;
  adam_opts.learning_rate = options_.learning_rate;
  adam_ = nn::Adam(adam_opts);
  made_->RegisterParameters(adam_);
}

ArDensityEstimator::~ArDensityEstimator() = default;

void ArDensityEstimator::RegisterSamplerCounters() {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  fallback_counters_.clear();
  fallback_counters_.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const std::string& name =
        c < column_names_.size() && !column_names_[c].empty()
            ? column_names_[c]
            : "col" + std::to_string(c);
    fallback_counters_.push_back(&reg.GetCounter(
        "iam_sampler_zero_mass_fallbacks_total", "column", name));
  }
}

void ArDensityEstimator::BuildColumns(const data::Table& table) {
  // Build-time only (construction is exclusive); taken for the pool() calls.
  util::MutexLock lock(batch_mu_);
  columns_.resize(table.num_columns());

  // Autoregressive order: identity unless the caller supplied a permutation.
  std::vector<int> order = options_.column_order;
  if (order.empty()) {
    order.resize(table.num_columns());
    std::iota(order.begin(), order.end(), 0);
  }
  IAM_CHECK(static_cast<int>(order.size()) == table.num_columns());
  {
    std::vector<bool> seen(order.size(), false);
    for (int c : order) {
      IAM_CHECK(c >= 0 && c < table.num_columns() && !seen[c]);
      seen[c] = true;
    }
  }

  // Dictionaries are independent per column: build them in parallel.
  pool().ParallelFor(columns_.size(), [&](size_t c, int) {
    columns_[c].dict = data::ValueDictionary::Build(table.column(c).values);
  });

  // Sequential pass in AR order: each column's kind and the model-column
  // layout (the layout depends on the order).
  for (int c : order) {
    TableColumn& col = columns_[c];
    const size_t distinct = col.dict.size();
    const bool large = distinct > options_.large_domain_threshold;
    const bool continuous =
        table.column(c).type == data::ColumnType::kContinuous;

    if (large && continuous && options_.use_domain_reduction) {
      col.kind = TableColumn::Kind::kReduced;
    } else if (large) {
      // NeuroCard column factorization: code -> (code / base, code % base).
      col.kind = TableColumn::Kind::kFactorized;
      col.factor_base = 1 << options_.factor_bits;
      if (static_cast<int>(distinct) <= col.factor_base) {
        // Fits a single sub-column after all.
        col.kind = TableColumn::Kind::kRaw;
      }
    } else {
      col.kind = TableColumn::Kind::kRaw;
    }

    col.first_model_col = static_cast<int>(model_col_owner_.size());
    col.num_model_cols = col.kind == TableColumn::Kind::kFactorized ? 2 : 1;
    for (int role = 0; role < col.num_model_cols; ++role) {
      model_col_owner_.push_back(c);
      model_col_role_.push_back(role);
    }
  }

  // Reducer fitting dominates build time (VBGM / mixture init plus the
  // Monte-Carlo sample draws); columns are independent, so fit them in
  // parallel, each with a deterministic per-column seed so the result does
  // not depend on the thread count or the fitting order.
  pool().ParallelFor(columns_.size(), [&](size_t ci, int) {
    const int c = static_cast<int>(ci);
    TableColumn& col = columns_[c];
    if (col.kind != TableColumn::Kind::kReduced) return;
    const auto& values = table.column(c).values;
    Rng reducer_rng(options_.seed ^ 0x5eed5eedu ^
                    (static_cast<uint64_t>(c) << 32));
    switch (options_.reducer_kind) {
      case ReducerKind::kGmm: {
        gmm::Gmm1D gmm(1);
        if (options_.reducer_components <= 0) {
          gmm::VbgmOptions vb;
          gmm = FitVbgm(values, vb, reducer_rng).gmm;
        } else {
          gmm = gmm::Gmm1D(options_.reducer_components);
          gmm.InitFromData(values, reducer_rng);
          gmm.set_learning_rate(options_.gmm_learning_rate);
        }
        col.reducer = std::make_unique<bucketize::GmmReducer>(
            std::move(gmm), options_.gmm_samples_per_component,
            options_.exact_range_mass, options_.seed ^ (0x9000 + c));
        break;
      }
      case ReducerKind::kEquiDepth:
        col.reducer = bucketize::MakeEquiDepthReducer(
            values, options_.reducer_components);
        break;
      case ReducerKind::kSpline:
        col.reducer =
            bucketize::MakeSplineReducer(values, options_.reducer_components);
        break;
      case ReducerKind::kUmm:
        col.reducer = bucketize::MakeUmmReducer(
            values, options_.reducer_components, reducer_rng);
        break;
      case ReducerKind::kLaplace: {
        gmm::LaplaceMixture1D mixture(
            std::max(1, options_.reducer_components));
        mixture.InitFromData(values, reducer_rng);
        mixture.set_learning_rate(options_.gmm_learning_rate);
        col.reducer = std::make_unique<bucketize::LaplaceReducer>(
            std::move(mixture));
        break;
      }
    }
  });
}

void ArDensityEstimator::BuildTrainingSample(const data::Table& table) {
  const size_t n = table.num_rows();
  std::vector<size_t> rows;
  if (n > options_.max_train_rows) {
    rows = rng_.SampleWithoutReplacement(n, options_.max_train_rows);
  } else {
    rows.resize(n);
    std::iota(rows.begin(), rows.end(), size_t{0});
  }
  train_rows_ = rows.size();
  train_values_.assign(table.num_columns(), {});
  for (int c = 0; c < table.num_columns(); ++c) {
    train_values_[c].reserve(train_rows_);
    for (size_t r : rows) train_values_[c].push_back(table.value(r, c));
  }
}

void ArDensityEstimator::EncodeStaticColumns() {
  encoded_.assign(train_rows_,
                  std::vector<int>(model_col_owner_.size(), 0));
  for (size_t c = 0; c < columns_.size(); ++c) {
    const TableColumn& col = columns_[c];
    const int m = col.first_model_col;
    switch (col.kind) {
      case TableColumn::Kind::kRaw:
        for (size_t r = 0; r < train_rows_; ++r) {
          const int code = col.dict.Encode(train_values_[c][r]);
          IAM_CHECK(code >= 0);
          encoded_[r][m] = code;
        }
        break;
      case TableColumn::Kind::kFactorized:
        for (size_t r = 0; r < train_rows_; ++r) {
          const int code = col.dict.Encode(train_values_[c][r]);
          IAM_CHECK(code >= 0);
          encoded_[r][m] = code / col.factor_base;
          encoded_[r][m + 1] = code % col.factor_base;
        }
        break;
      case TableColumn::Kind::kReduced:
        // Mixture-model assignments move during joint training and are
        // re-encoded per batch; static reducers are encoded once here.
        if (!col.reducer->trainable()) {
          for (size_t r = 0; r < train_rows_; ++r) {
            encoded_[r][m] = col.reducer->Assign(train_values_[c][r]);
          }
        }
        break;
    }
  }
}

void ArDensityEstimator::RefreshReducerSamples() {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].kind != TableColumn::Kind::kReduced) continue;
    columns_[c].reducer->PostEpoch(options_.seed ^ (0x7777 + c) ^
                                   static_cast<uint64_t>(adam_.step_count()));
  }
}

double ArDensityEstimator::TrainEpoch() {
  obs::TraceSpan span("core.train_epoch");
  Stopwatch epoch_watch;
  std::vector<size_t> order(train_rows_);
  std::iota(order.begin(), order.end(), size_t{0});
  rng_.Shuffle(order);

  const int batch_size = options_.batch_size;
  std::vector<std::vector<int>> batch;
  std::vector<double> gmm_batch;
  double loss_sum = 0.0;
  size_t batches = 0;

  for (size_t begin = 0; begin < train_rows_; begin += batch_size) {
    const size_t end = std::min(train_rows_, begin + batch_size);

    // Joint step 1: advance each trainable mixture on this batch and
    // re-encode its column (Equation 6's loss_GMM terms; the argmax
    // assignment of Equation 5).
    for (size_t c = 0; c < columns_.size(); ++c) {
      TableColumn& col = columns_[c];
      if (col.kind != TableColumn::Kind::kReduced ||
          !col.reducer->trainable()) {
        continue;
      }
      gmm_batch.clear();
      for (size_t i = begin; i < end; ++i) {
        gmm_batch.push_back(train_values_[c][order[i]]);
      }
      for (int pass = 0; pass < options_.gmm_sgd_passes; ++pass) {
        col.reducer->TrainStep(gmm_batch);
      }
      const int m = col.first_model_col;
      for (size_t i = begin; i < end; ++i) {
        encoded_[order[i]][m] =
            col.reducer->Assign(train_values_[c][order[i]]);
      }
    }

    // Joint step 2: AR cross-entropy on the (re-)encoded tuples.
    batch.clear();
    for (size_t i = begin; i < end; ++i) batch.push_back(encoded_[order[i]]);
    loss_sum += made_->TrainStep(batch, adam_, rng_);
    ++batches;
  }

  RefreshReducerSamples();
  last_epoch_loss_ = batches > 0 ? loss_sum / static_cast<double>(batches)
                                 : 0.0;
  CoreMetrics& metrics = CoreMetrics::Get();
  metrics.train_epochs.Add();
  metrics.epoch_loss.Set(last_epoch_loss_);
  metrics.epoch_seconds.Record(epoch_watch.ElapsedSeconds());
  return last_epoch_loss_;
}

void ArDensityEstimator::Train() {
  for (int e = 0; e < options_.epochs; ++e) TrainEpoch();
}

std::string ArDensityEstimator::name() const {
  if (!options_.display_name.empty()) return options_.display_name;
  return options_.use_domain_reduction ? "iam" : "neurocard";
}

std::vector<ArDensityEstimator::Constraint>
ArDensityEstimator::BuildConstraints(const query::Query& q) const {
  // Merge predicates per table column into one interval.
  std::vector<double> lo(columns_.size(),
                         -std::numeric_limits<double>::infinity());
  std::vector<double> hi(columns_.size(),
                         std::numeric_limits<double>::infinity());
  std::vector<bool> touched(columns_.size(), false);
  for (const query::Predicate& p : q.predicates) {
    IAM_CHECK(p.column >= 0 && p.column < static_cast<int>(columns_.size()));
    lo[p.column] = std::max(lo[p.column], p.lo);
    hi[p.column] = std::min(hi[p.column], p.hi);
    touched[p.column] = true;
  }

  std::vector<Constraint> constraints(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (!touched[c]) continue;
    Constraint& con = constraints[c];
    con.active = true;
    con.range_lo = lo[c];
    con.range_hi = hi[c];
    const TableColumn& col = columns_[c];
    if (hi[c] < lo[c]) {
      con.impossible = true;
      continue;
    }
    switch (col.kind) {
      case TableColumn::Kind::kRaw:
      case TableColumn::Kind::kFactorized: {
        const auto range = col.dict.EncodeRange(lo[c], hi[c]);
        if (range.empty()) {
          con.impossible = true;
        } else {
          con.code_lo = range.first;
          con.code_hi = range.last;
        }
        break;
      }
      case TableColumn::Kind::kReduced: {
        // Query construction rule (Section 5.1): R'_i = Dom(A'_i); the range
        // enters through the bias-correction vector \hat P_GMM(R_i).
        con.mass = col.reducer->RangeMass(lo[c], hi[c]);
        double total = 0.0;
        for (double m : con.mass) total += m;
        if (total <= 0.0) con.impossible = true;
        break;
      }
    }
  }
  return constraints;
}

double ArDensityEstimator::Estimate(const query::Query& q) {
  return EstimateBatch({&q, 1})[0];
}

void ArDensityEstimator::EnsureScratch() {
  const size_t n = static_cast<size_t>(pool().num_threads());
  if (scratch_.size() < n) scratch_.resize(n);
}

ArDensityEstimator::QueryRun ArDensityEstimator::RunQuerySampling(
    const query::Query& q, int force_active_col, Rng& rng,
    InferenceScratch& scratch) const {
  const int num_model_cols = static_cast<int>(model_col_owner_.size());
  const int sp = options_.progressive_samples;
  CoreMetrics& metrics = CoreMetrics::Get();
  metrics.sampler_queries.Add();

  QueryRun run;
  run.constraints = BuildConstraints(q);
  if (force_active_col >= 0 && !run.constraints[force_active_col].active) {
    Constraint& con = run.constraints[force_active_col];
    con.active = true;
    con.range_lo = -std::numeric_limits<double>::infinity();
    con.range_hi = std::numeric_limits<double>::infinity();
    const TableColumn& col = columns_[force_active_col];
    if (col.kind == TableColumn::Kind::kReduced) {
      con.mass = col.reducer->RangeMass(con.range_lo, con.range_hi);
    } else {
      con.code_lo = 0;
      con.code_hi = col.dict.size() - 1;
    }
  }
  for (const Constraint& con : run.constraints) {
    if (con.impossible) run.dead = true;
  }

  // Sample state: sp rows; every value starts as the wildcard token
  // (unqueried columns are skipped entirely — wildcard skipping).
  run.samples.assign(sp, std::vector<int>(num_model_cols, 0));
  for (int m = 0; m < num_model_cols; ++m) {
    const int wildcard = made_->wildcard_token(m);
    for (auto& row : run.samples) row[m] = wildcard;
  }
  run.weights.assign(sp, 1.0);
  if (run.dead) {
    metrics.sampler_dead_queries.Add();
    return run;
  }

  std::vector<std::vector<int>>& gather = scratch.gather;
  std::vector<int>& gather_rows = scratch.gather_rows;

  for (int m = 0; m < num_model_cols; ++m) {
    const int owner = model_col_owner_[m];
    const int role = model_col_role_[m];
    const TableColumn& col = columns_[owner];
    const Constraint& con = run.constraints[owner];
    if (!con.active) continue;

    // Collect the still-live sample rows.
    gather.clear();
    gather_rows.clear();
    for (int s = 0; s < sp; ++s) {
      if (run.weights[s] <= 0.0) continue;
      gather_rows.push_back(s);
      gather.push_back(run.samples[s]);
    }
    if (gather.empty()) continue;
    // One progressive-sampling draw per live row at this AR step.
    metrics.sampler_samples.Add(gather.size());
    run.draws += gather.size();

    made_->ConditionalDistribution(gather, m, scratch.probs, scratch.ctx);

    for (size_t g = 0; g < gather_rows.size(); ++g) {
      const int row = gather_rows[g];
      const float* prow = scratch.probs.row(static_cast<int>(g));
      const int high = role == 1 ? run.samples[row][m - 1] : 0;
      const DrawOutcome draw = DrawCoordinate(col, con, role, high, prow, rng);

      if (draw.sampled < 0 || draw.mass <= 0.0) {
        run.weights[row] = 0.0;
        run.fallbacks += 1;
        run.fallback_column = owner;
        if (owner < static_cast<int>(fallback_counters_.size())) {
          fallback_counters_[owner]->Add();
        }
        // Leave the wildcard in place; the row is skipped from now on.
        continue;
      }
      run.weights[row] *= draw.mass;
      run.samples[row][m] = draw.sampled;
    }
  }

  return run;
}

ArDensityEstimator::DrawOutcome ArDensityEstimator::DrawCoordinate(
    const TableColumn& col, const Constraint& con, int role, int high,
    const float* prow, Rng& rng) const {
  // floor == 0 keeps the floored helpers bit-identical to the unfloored
  // originals (see core/sampling_utils.h), so the default configuration
  // reproduces the seed sampler exactly.
  const float floor = options_.min_conditional_prob > 0.0
                          ? static_cast<float>(options_.min_conditional_prob)
                          : 0.0f;
  DrawOutcome out;
  if (col.kind == TableColumn::Kind::kReduced) {
    // IAM's bias-corrected step: multiply the AR conditional over
    // component ids by \hat P_GMM(R_i), record the inner product, draw
    // the next coordinate from the normalized product (Section 5.2).
    const int dom = static_cast<int>(con.mass.size());
    for (int j = 0; j < dom; ++j) {
      if (prow[j] > floor) {
        out.mass += static_cast<double>(prow[j]) * con.mass[j];
      }
    }
    if (out.mass > 0.0) {
      if (options_.biased_sampling) {
        // Ablation: vanilla progressive sampling ignores the range mass
        // when drawing the coordinate (biased; Theorem 5.1's foil).
        const double psum = RangeSumFloored(prow, 0, dom - 1, floor);
        out.sampled = SampleInRangeFloored(prow, 0, dom - 1, psum,
                                           rng.Uniform(), floor);
      } else {
        const double target = rng.Uniform() * out.mass;
        double acc = 0.0;
        for (int j = 0; j < dom; ++j) {
          if (prow[j] <= floor) continue;
          const double w = static_cast<double>(prow[j]) * con.mass[j];
          if (w <= 0.0) continue;
          acc += w;
          out.sampled = j;
          if (acc >= target) break;
        }
      }
    }
  } else {
    // Vanilla progressive sampling over a contiguous code range.
    int first = con.code_lo;
    int last = con.code_hi;
    if (col.kind == TableColumn::Kind::kFactorized) {
      const int base = col.factor_base;
      const int max_code = col.dict.size() - 1;
      if (role == 0) {
        first = con.code_lo / base;
        last = con.code_hi / base;
      } else {
        // Low sub-column: bounds depend on the sampled high sub-column.
        first = high == con.code_lo / base ? con.code_lo % base : 0;
        last = high == con.code_hi / base ? con.code_hi % base : base - 1;
        if (high == max_code / base) {
          last = std::min(last, max_code % base);
        }
      }
    }
    if (first <= last) {
      out.mass = RangeSumFloored(prow, first, last, floor);
      if (out.mass > 0.0) {
        out.sampled = SampleInRangeFloored(prow, first, last, out.mass,
                                           rng.Uniform(), floor);
      }
    }
  }
  return out;
}

std::vector<double> ArDensityEstimator::EstimateBatch(
    std::span<const query::Query> qs) {
  return EstimateBatchDiagnosed(qs, {});
}

std::vector<double> ArDensityEstimator::EstimateBatchDiagnosed(
    std::span<const query::Query> qs,
    std::span<estimator::QueryDiagnostics> diags) {
  // Serializes concurrent batch calls (each still parallel internally) and
  // covers the per-worker scratch slots. Determinism makes the interleaving
  // unobservable: every query's estimate depends only on (seed, query index)
  // on both sampling paths.
  IAM_CHECK(diags.empty() || diags.size() == qs.size());
  obs::TraceSpan span("core.estimate_batch");
  estimator::BatchMetrics& batch_metrics = estimator::BatchMetrics::Get();
  Stopwatch batch_watch;
  util::MutexLock lock(batch_mu_);
  EnsureScratch();
  const int sp = options_.progressive_samples;
  std::vector<double> estimates(qs.size(), 0.0);
  if (options_.pooled_sampler) {
    // Group size caps the transient conditional matrices of one pooled round
    // at ~kPooledProbBudgetFloats. Splitting the batch is bit-neutral (query
    // estimates are functions of (seed, global query index) alone); it only
    // bounds how much cross-query amortization a single round can see.
    int max_dom = 1;
    for (int m = 0; m < made_->num_columns(); ++m) {
      max_dom = std::max(max_dom, made_->domain_size(m));
    }
    const size_t rows_cap = std::max<size_t>(
        std::max(sp, 1),
        kPooledProbBudgetFloats / static_cast<size_t>(max_dom));
    const size_t group = std::max<size_t>(1, rows_cap / std::max(sp, 1));
    for (size_t begin = 0; begin < qs.size(); begin += group) {
      EstimateBatchPooled(qs, begin, std::min(qs.size(), begin + group),
                          estimates, diags);
    }
    // Per-query latency under pooling is the amortized batch time: exactly
    // one Record per query, matching the legacy path's semantic count.
    if (!qs.empty()) {
      const double per_query =
          batch_watch.ElapsedSeconds() / static_cast<double>(qs.size());
      for (size_t qi = 0; qi < qs.size(); ++qi) {
        batch_metrics.query_seconds.Record(per_query);
      }
    }
  } else {
    // Legacy per-query oracle: one deterministic Rng per query
    // (seed ^ query index) and one whole sampling pass per query.
    pool().ParallelFor(qs.size(), [&](size_t qi, int worker) {
      Stopwatch query_watch;
      Rng rng(options_.seed ^ static_cast<uint64_t>(qi));
      const QueryRun run =
          RunQuerySampling(qs[qi], /*force_active_col=*/-1, rng,
                           scratch_[worker]);
      if (!run.dead) {
        double total = 0.0;
        for (int s = 0; s < sp; ++s) total += run.weights[s];
        estimates[qi] = Clamp(total / sp, 0.0, 1.0);
      }
      if (!diags.empty()) {
        estimator::QueryDiagnostics& d = diags[qi];
        d = estimator::QueryDiagnostics{};
        d.sampler_draws = run.draws;
        d.sample_rows = run.dead ? 0 : sp;
        d.rounds = run.dead ? 0 : 1;  // the legacy path is one fixed wave
        d.fallbacks = run.fallbacks;
        d.fallback_column = run.fallback_column;
        d.dead = run.dead;
      }
      batch_metrics.query_seconds.Record(query_watch.ElapsedSeconds());
    });
  }
  if (options_.enable_corrector && corrector_ != nullptr) {
    // Post-estimate correction (DESIGN.md §18): multiply each raw estimate
    // by the corrector's multiplier for the query's region. When disabled
    // this loop never executes, so the uncorrected path stays bit-identical
    // to a build without a corrector (the pooled bit-exactness gates).
    for (size_t qi = 0; qi < qs.size(); ++qi) {
      const uint64_t key = CorrectorRegionKey(qs[qi]);
      const double mult = corrector_->MultiplierForRegion(key);
      estimates[qi] = Clamp(estimates[qi] * mult, 0.0, 1.0);
      if (!diags.empty()) {
        diags[qi].region_key = key;
        diags[qi].corrector_multiplier = mult;
      }
    }
  }
  batch_metrics.queries.Add(qs.size());
  batch_metrics.batches.Add();
  batch_metrics.batch_seconds.Record(batch_watch.ElapsedSeconds());
  return estimates;
}

void ArDensityEstimator::EstimateBatchPooled(
    std::span<const query::Query> qs, size_t q_begin, size_t q_end,
    std::vector<double>& estimates,
    std::span<estimator::QueryDiagnostics> diags) {
  const int nq = static_cast<int>(q_end - q_begin);
  if (nq <= 0) return;
  const int num_model_cols = static_cast<int>(model_col_owner_.size());
  const int sp = options_.progressive_samples;
  CoreMetrics& metrics = CoreMetrics::Get();
  PooledMetrics& pooled_metrics = PooledMetrics::Get();
  PooledScratch& ps = pooled_;

  metrics.sampler_queries.Add(static_cast<uint64_t>(nq));
  ps.queries.resize(nq);
  // Phase 0: per-query constraints and Rngs, parallel over queries. Rngs are
  // seeded by the *global* batch index so group splitting and the legacy
  // path agree on every draw sequence.
  pool().ParallelFor(nq, [&](size_t i, int) {
    PooledQuery& pq = ps.queries[i];
    pq.constraints = BuildConstraints(qs[q_begin + i]);
    pq.rng = Rng(options_.seed ^ static_cast<uint64_t>(q_begin + i));
    pq.dead = false;
    pq.done = false;
    pq.early_stopped = false;
    pq.samples_done = 0;
    pq.weight_sum = 0.0;
    pq.weight_sq = 0.0;
    pq.draws = 0;
    pq.prefix_hits = 0;
    pq.fallbacks = 0;
    pq.fallback_column = -1;
    pq.rounds = 0;
    pq.early_stop_round = -1;
    pq.ci_half_width = 0.0;
    for (const Constraint& con : pq.constraints) {
      if (con.impossible) pq.dead = true;
    }
    if (pq.dead) {
      pq.done = true;
      metrics.sampler_dead_queries.Add();
    }
  });

  // Pooled sample matrix: query i's sample row s lives at flat row
  // i * sp + s. Every value starts as its column's wildcard token (wildcard
  // skipping — unqueried columns are never materialized), weights at 1.
  ps.wildcard_row.resize(num_model_cols);
  for (int m = 0; m < num_model_cols; ++m) {
    ps.wildcard_row[m] = made_->wildcard_token(m);
  }
  const size_t total_rows = static_cast<size_t>(nq) * sp;
  ps.samples.resize(total_rows * num_model_cols);
  for (size_t r = 0; r < total_rows; ++r) {
    std::copy(ps.wildcard_row.begin(), ps.wildcard_row.end(),
              ps.samples.begin() + r * num_model_cols);
  }
  ps.weights.assign(total_rows, 1.0);

  const bool adaptive = options_.adaptive_min_samples > 0;
  // Every still-running query has completed sample rows [0, cursor): waves
  // advance all of them in lockstep, so per-query draw order stays exactly
  // column-major over that query's own rows — the legacy order. With the
  // fixed budget there is a single wave of sp rows and the pooled sampler is
  // bit-identical to the per-query path; adaptive budgets chunk the rows
  // (min samples, then doubling), which reorders draws across waves but
  // remains deterministic in (seed, query index).
  int cursor = 0;
  while (cursor < sp) {
    ps.wave_queries.clear();
    for (int i = 0; i < nq; ++i) {
      if (!ps.queries[i].done) ps.wave_queries.push_back(i);
    }
    if (ps.wave_queries.empty()) break;
    const int wave =
        adaptive
            ? std::min(cursor == 0 ? std::min(options_.adaptive_min_samples,
                                              sp)
                                   : cursor,
                       sp - cursor)
            : sp;

    for (int m = 0; m < num_model_cols; ++m) {
      const int owner = model_col_owner_[m];
      const int role = model_col_role_[m];
      const TableColumn& col = columns_[owner];

      // Gather this wave's live rows, query-major then row-ascending: the
      // same visit order as the legacy sampler, so each query's rng draws
      // line up one-to-one.
      ps.live_rows.clear();
      ps.draw_queries.clear();
      ps.seg_begin.clear();
      ps.seg_end.clear();
      for (const int i : ps.wave_queries) {
        if (!ps.queries[i].constraints[owner].active) continue;
        const int begin = static_cast<int>(ps.live_rows.size());
        const size_t base = static_cast<size_t>(i) * sp;
        for (int s = cursor; s < cursor + wave; ++s) {
          if (ps.weights[base + s] <= 0.0) continue;
          ps.live_rows.push_back(static_cast<int>(base + s));
        }
        if (static_cast<int>(ps.live_rows.size()) == begin) continue;
        ps.draw_queries.push_back(i);
        ps.seg_begin.push_back(begin);
        ps.seg_end.push_back(static_cast<int>(ps.live_rows.size()));
      }
      const int live = static_cast<int>(ps.live_rows.size());
      if (live == 0) continue;
      metrics.sampler_samples.Add(static_cast<uint64_t>(live));
      pooled_metrics.round_rows.Record(live);

      // Exact prefix sharing: rows agreeing on model columns [0, m) have
      // bitwise-identical encoded inputs (columns >= m are still wildcard
      // in every row), hence bitwise-identical conditionals — evaluate one
      // representative per distinct prefix.
      int unique = 0;
      ps.unique_of.resize(live);
      ps.hit_of.assign(live, 0);
      ps.unique_data.resize(static_cast<size_t>(live) * num_model_cols);
      if (options_.prefix_sharing) {
        ps.unique_hash.clear();
        ps.unique_next.clear();
        size_t buckets = 16;
        while (buckets < static_cast<size_t>(live) * 2) buckets <<= 1;
        ps.bucket_head.assign(buckets, -1);
        const uint64_t mask = buckets - 1;
        for (int g = 0; g < live; ++g) {
          const int* row = ps.samples.data() +
                           static_cast<size_t>(ps.live_rows[g]) *
                               num_model_cols;
          uint64_t h = 1469598103934665603ull;  // FNV-1a over the prefix
          for (int c = 0; c < m; ++c) {
            h ^= static_cast<uint32_t>(row[c]);
            h *= 1099511628211ull;
          }
          int uid = ps.bucket_head[h & mask];
          while (uid >= 0) {
            if (ps.unique_hash[uid] == h &&
                std::equal(row, row + m,
                           ps.unique_data.begin() +
                               static_cast<size_t>(uid) * num_model_cols)) {
              break;
            }
            uid = ps.unique_next[uid];
          }
          if (uid < 0) {
            uid = unique++;
            std::copy(row, row + num_model_cols,
                      ps.unique_data.begin() +
                          static_cast<size_t>(uid) * num_model_cols);
            ps.unique_hash.push_back(h);
            ps.unique_next.push_back(ps.bucket_head[h & mask]);
            ps.bucket_head[h & mask] = uid;
          } else {
            ps.hit_of[g] = 1;  // shared an already-seen prefix
          }
          ps.unique_of[g] = uid;
        }
        pooled_metrics.prefix_hits.Add(static_cast<uint64_t>(live - unique));
      } else {
        unique = live;
        for (int g = 0; g < live; ++g) {
          ps.unique_of[g] = g;
          const int* row = ps.samples.data() +
                           static_cast<size_t>(ps.live_rows[g]) *
                               num_model_cols;
          std::copy(row, row + num_model_cols,
                    ps.unique_data.begin() +
                        static_cast<size_t>(g) * num_model_cols);
        }
      }

      // One pooled GEMM per column per round, cut into kSliceRows slices:
      // per-row kernel results are bitwise invariant to the slicing, and the
      // fixed granularity keeps the pool's job/index counters semantic.
      const int num_slices = (unique + kSliceRows - 1) / kSliceRows;
      if (static_cast<int>(ps.slice_probs.size()) < num_slices) {
        ps.slice_probs.resize(num_slices);
      }
      pooled_metrics.gemm_rows.Add(static_cast<uint64_t>(unique));
      pooled_metrics.gemm_rows_hist.Record(unique);
      pool().ParallelFor(num_slices, [&](size_t si, int worker) {
        const int r0 = static_cast<int>(si) * kSliceRows;
        const ar::EncodedView view{
            ps.unique_data.data() + static_cast<size_t>(r0) * num_model_cols,
            std::min(kSliceRows, unique - r0), num_model_cols};
        made_->ConditionalDistribution(view, m, ps.slice_probs[si],
                                       scratch_[worker].ctx);
      });

      // Draws: parallel across queries, sequential within a query (it owns
      // its rng stream), rows ascending — the legacy order again.
      pool().ParallelFor(ps.draw_queries.size(), [&](size_t di, int) {
        const int i = ps.draw_queries[di];
        PooledQuery& pq = ps.queries[i];
        const Constraint& con = pq.constraints[owner];
        // Per-query diagnostics: the segment [seg_begin, seg_end) is this
        // query's exact share of the wave's `live` rows, so summing segment
        // lengths over every (wave, column) step reproduces the process-wide
        // iam_sampler_samples_total contribution of this query.
        pq.draws += static_cast<uint64_t>(ps.seg_end[di] - ps.seg_begin[di]);
        for (int g = ps.seg_begin[di]; g < ps.seg_end[di]; ++g) {
          const int row = ps.live_rows[g];
          const int uid = ps.unique_of[g];
          pq.prefix_hits += ps.hit_of[g];
          const float* prow =
              ps.slice_probs[uid / kSliceRows].row(uid % kSliceRows);
          int* srow =
              ps.samples.data() + static_cast<size_t>(row) * num_model_cols;
          const int high = role == 1 ? srow[m - 1] : 0;
          const DrawOutcome draw =
              DrawCoordinate(col, con, role, high, prow, pq.rng);
          if (draw.sampled < 0 || draw.mass <= 0.0) {
            ps.weights[row] = 0.0;
            pq.fallbacks += 1;
            pq.fallback_column = owner;
            if (owner < static_cast<int>(fallback_counters_.size())) {
              fallback_counters_[owner]->Add();
            }
            continue;
          }
          ps.weights[row] *= draw.mass;
          srow[m] = draw.sampled;
        }
      });
    }

    // Wave end: fold the finished rows into each query's running estimate
    // (ascending row order — the legacy summation order) and, under
    // adaptive budgets, stop queries whose confidence interval converged.
    cursor += wave;
    for (const int i : ps.wave_queries) {
      PooledQuery& pq = ps.queries[i];
      const size_t base = static_cast<size_t>(i) * sp;
      for (int s = cursor - wave; s < cursor; ++s) {
        const double w = ps.weights[base + s];
        pq.weight_sum += w;
        pq.weight_sq += w * w;
      }
      pq.samples_done = cursor;
      pq.rounds += 1;
      if (cursor >= sp) {
        pq.done = true;
        continue;
      }
      if (adaptive && pq.samples_done >= 2) {
        const double n = pq.samples_done;
        const double mean = pq.weight_sum / n;
        const double var =
            std::max((pq.weight_sq - n * mean * mean) / (n - 1.0), 0.0);
        const double half = options_.adaptive_ci_z * std::sqrt(var / n);
        pq.ci_half_width = half;
        if (half <=
            options_.adaptive_ci_rel * mean + options_.adaptive_ci_abs) {
          pq.done = true;
          pq.early_stopped = true;
          pq.early_stop_round = pq.rounds;
          pooled_metrics.early_stops.Add();
        }
      }
    }
  }

  for (int i = 0; i < nq; ++i) {
    const PooledQuery& pq = ps.queries[i];
    if (!diags.empty()) {
      estimator::QueryDiagnostics& d = diags[q_begin + i];
      d = estimator::QueryDiagnostics{};
      d.sampler_draws = pq.draws;
      d.sample_rows = pq.samples_done;
      d.rounds = pq.rounds;
      d.early_stop_round = pq.early_stop_round;
      d.prefix_hits = pq.prefix_hits;
      d.fallbacks = pq.fallbacks;
      d.fallback_column = pq.fallback_column;
      d.dead = pq.dead;
      d.ci_half_width = pq.ci_half_width;
    }
    if (pq.dead || pq.samples_done <= 0) continue;  // estimate stays 0
    estimates[q_begin + i] =
        Clamp(pq.weight_sum / pq.samples_done, 0.0, 1.0);
    pooled_metrics.query_samples.Record(pq.samples_done);
  }
}

void ArDensityEstimator::set_sampler_mode(bool pooled, bool prefix_sharing,
                                          int adaptive_min_samples) {
  util::MutexLock lock(batch_mu_);
  options_.pooled_sampler = pooled;
  options_.prefix_sharing = prefix_sharing;
  options_.adaptive_min_samples = adaptive_min_samples;
}

void ArDensityEstimator::set_corrector(
    std::shared_ptr<const estimator::SelectivityCorrector> corrector,
    bool enable) {
  util::MutexLock lock(batch_mu_);
  corrector_ = std::move(corrector);
  options_.enable_corrector = enable && corrector_ != nullptr;
}

uint64_t ArDensityEstimator::CorrectorRegionKey(const query::Query& q) const {
  // Merge predicates per table column exactly like BuildConstraints, then
  // hash the quantized interval coordinates. FNV-1a over 8-byte words.
  constexpr uint64_t kFnvOffset = 1469598103934665603ull;
  constexpr uint64_t kFnvPrime = 1099511628211ull;
  uint64_t h = kFnvOffset;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= kFnvPrime;
    }
  };
  std::vector<double> lo(columns_.size(),
                         -std::numeric_limits<double>::infinity());
  std::vector<double> hi(columns_.size(),
                         std::numeric_limits<double>::infinity());
  std::vector<bool> touched(columns_.size(), false);
  for (const query::Predicate& p : q.predicates) {
    IAM_CHECK(p.column >= 0 && p.column < static_cast<int>(columns_.size()));
    lo[p.column] = std::max(lo[p.column], p.lo);
    hi[p.column] = std::min(hi[p.column], p.hi);
    touched[p.column] = true;
  }
  // Cell sentinels: 0 = -inf bound, 1 = +inf bound, 2 = empty/impossible;
  // real bucket/code coordinates start at 3.
  constexpr uint64_t kCellNegInf = 0;
  constexpr uint64_t kCellPosInf = 1;
  constexpr uint64_t kCellEmpty = 2;
  constexpr uint64_t kCellBase = 3;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (!touched[c]) continue;
    mix(c + 1);
    const TableColumn& col = columns_[c];
    if (hi[c] < lo[c]) {
      mix(kCellEmpty);
      continue;
    }
    if (col.kind == TableColumn::Kind::kReduced) {
      // The reducer's bucket grid — for the paper's configuration, the GMM
      // component each interval endpoint is assigned to.
      const auto cell = [&](double bound, uint64_t inf_cell) {
        if (std::isinf(bound)) return inf_cell;
        return kCellBase + static_cast<uint64_t>(col.reducer->Assign(bound));
      };
      mix(cell(lo[c], kCellNegInf));
      mix(cell(hi[c], kCellPosInf));
    } else {
      // Raw / factorized columns: coarse per-column buckets from the
      // dictionary code range (small domains by construction for kRaw).
      const auto range = col.dict.EncodeRange(lo[c], hi[c]);
      if (range.empty()) {
        mix(kCellEmpty);
      } else {
        mix(kCellBase + static_cast<uint64_t>(range.first));
        mix(kCellBase + static_cast<uint64_t>(range.last));
      }
    }
  }
  return h;
}

ArDensityEstimator::AggregateResult ArDensityEstimator::EstimateAggregate(
    const query::Query& q, int target_col) {
  IAM_CHECK(target_col >= 0 &&
            target_col < static_cast<int>(columns_.size()));
  AggregateResult result;
  util::MutexLock lock(batch_mu_);
  EnsureScratch();
  Rng rng(options_.seed ^ 0xa99f00dULL);
  const QueryRun run = RunQuerySampling(q, target_col, rng, scratch_[0]);
  if (run.dead) return result;

  const TableColumn& col = columns_[target_col];
  const Constraint& con = run.constraints[target_col];
  const int m = col.first_model_col;
  const int sp = options_.progressive_samples;

  double weight_sum = 0.0;
  double weighted_value_sum = 0.0;
  for (int s = 0; s < sp; ++s) {
    const double w = run.weights[s];
    if (w <= 0.0) continue;
    double value = 0.0;
    switch (col.kind) {
      case TableColumn::Kind::kRaw:
        value = col.dict.Decode(run.samples[s][m]);
        break;
      case TableColumn::Kind::kFactorized: {
        const int code = run.samples[s][m] * col.factor_base +
                         run.samples[s][m + 1];
        value = col.dict.Decode(code);
        break;
      }
      case TableColumn::Kind::kReduced:
        value = col.reducer->RepresentativeValue(run.samples[s][m],
                                                 con.range_lo, con.range_hi);
        break;
    }
    weight_sum += w;
    weighted_value_sum += w * value;
  }

  result.selectivity = Clamp(weight_sum / sp, 0.0, 1.0);
  result.count = result.selectivity * static_cast<double>(table_rows_);
  // mean(w * v) is unbiased for E[A * 1q]; scale by |T| for the SUM.
  result.sum =
      weighted_value_sum / sp * static_cast<double>(table_rows_);
  result.avg = weight_sum > 0.0 ? weighted_value_sum / weight_sum : 0.0;
  return result;
}

namespace {
// Envelope identity of the composite model snapshot (everything the serving
// path loads: column metadata, dictionaries, reducers, AR weights). Version 2
// replaced the bare magic-string header of the original format with the
// checksummed util::WriteEnvelope container; old files fail the magic check
// cleanly.
constexpr std::string_view kModelMagic = "IAMMODEL";
constexpr uint32_t kModelFormatVersion = 2;
}  // namespace

Status ArDensityEstimator::Save(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  std::ostringstream out;
  WriteString(out, options_.display_name);
  WritePod<uint8_t>(out, options_.use_domain_reduction ? 1 : 0);
  WritePod<uint8_t>(out, options_.biased_sampling ? 1 : 0);
  WritePod<int32_t>(out, options_.progressive_samples);
  WritePod<uint64_t>(out, options_.seed);
  WritePod<uint64_t>(out, table_rows_);

  WritePod<uint32_t>(out, static_cast<uint32_t>(columns_.size()));
  for (size_t c = 0; c < columns_.size(); ++c) {
    WriteString(out, c < column_names_.size() ? column_names_[c] : "");
    WritePod<uint8_t>(out, c < column_types_.size() &&
                                   column_types_[c] ==
                                       data::ColumnType::kCategorical
                               ? 1
                               : 0);
  }
  for (const TableColumn& col : columns_) {
    WritePod<uint8_t>(out, static_cast<uint8_t>(col.kind));
    WritePod<int32_t>(out, col.factor_base);
    WritePod<int32_t>(out, col.first_model_col);
    WritePod<int32_t>(out, col.num_model_cols);
    col.dict.Serialize(out);
    const uint8_t has_reducer = col.reducer != nullptr ? 1 : 0;
    WritePod<uint8_t>(out, has_reducer);
    if (has_reducer) col.reducer->Serialize(out);
  }
  WriteVector(out, model_col_owner_);
  WriteVector(out, model_col_role_);
  made_->Serialize(out);
  WriteEnvelope(file, kModelMagic, kModelFormatVersion, out.str());
  if (!file) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<std::unique_ptr<ArDensityEstimator>> ArDensityEstimator::Load(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  return LoadFromStream(file);
}

Result<std::unique_ptr<ArDensityEstimator>> ArDensityEstimator::LoadFromStream(
    std::istream& stream) {
  Result<std::string> payload =
      ReadEnvelope(stream, kModelMagic, kModelFormatVersion);
  if (!payload.ok()) return payload.status();
  std::istringstream in(std::move(payload.value()));

  // The Load() constructor is private; make_unique cannot reach it.
  std::unique_ptr<ArDensityEstimator> est(
      new ArDensityEstimator());  // NOLINT(iam-naked-new): private ctor
  uint8_t use_reduction = 0, biased = 0;
  IAM_RETURN_IF_ERROR(ReadString(in, &est->options_.display_name));
  IAM_RETURN_IF_ERROR(ReadPod(in, &use_reduction));
  IAM_RETURN_IF_ERROR(ReadPod(in, &biased));
  IAM_RETURN_IF_ERROR(ReadPod(in, &est->options_.progressive_samples));
  IAM_RETURN_IF_ERROR(ReadPod(in, &est->options_.seed));
  IAM_RETURN_IF_ERROR(ReadPod(in, &est->table_rows_));
  est->options_.use_domain_reduction = use_reduction != 0;
  est->options_.biased_sampling = biased != 0;
  est->rng_ = Rng(est->options_.seed ^ 0x10adull);

  uint32_t num_columns = 0;
  IAM_RETURN_IF_ERROR(ReadPod(in, &num_columns));
  if (num_columns == 0 || num_columns > 4096) {
    return Status::IoError("implausible column count");
  }
  est->columns_.resize(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    uint8_t categorical = 0;
    IAM_RETURN_IF_ERROR(ReadString(in, &name));
    IAM_RETURN_IF_ERROR(ReadPod(in, &categorical));
    est->column_names_.push_back(std::move(name));
    est->column_types_.push_back(categorical != 0
                                     ? data::ColumnType::kCategorical
                                     : data::ColumnType::kContinuous);
  }
  for (TableColumn& col : est->columns_) {
    uint8_t kind = 0, has_reducer = 0;
    IAM_RETURN_IF_ERROR(ReadPod(in, &kind));
    if (kind > 2) return Status::IoError("bad column kind");
    col.kind = static_cast<TableColumn::Kind>(kind);
    IAM_RETURN_IF_ERROR(ReadPod(in, &col.factor_base));
    IAM_RETURN_IF_ERROR(ReadPod(in, &col.first_model_col));
    IAM_RETURN_IF_ERROR(ReadPod(in, &col.num_model_cols));
    Result<data::ValueDictionary> dict =
        data::ValueDictionary::Deserialize(in);
    if (!dict.ok()) return dict.status();
    col.dict = std::move(dict.value());
    IAM_RETURN_IF_ERROR(ReadPod(in, &has_reducer));
    if (has_reducer != 0) {
      auto reducer = bucketize::DomainReducer::Deserialize(in);
      if (!reducer.ok()) return reducer.status();
      col.reducer = std::move(reducer.value());
    }
    if (col.kind == TableColumn::Kind::kReduced && col.reducer == nullptr) {
      return Status::IoError("reduced column missing its reducer");
    }
  }
  IAM_RETURN_IF_ERROR(ReadVector(in, &est->model_col_owner_));
  IAM_RETURN_IF_ERROR(ReadVector(in, &est->model_col_role_));
  if (est->model_col_owner_.size() != est->model_col_role_.size() ||
      est->model_col_owner_.empty()) {
    return Status::IoError("inconsistent model column mapping");
  }
  auto made = ar::ResMade::Deserialize(in);
  if (!made.ok()) return made.status();
  est->made_ = std::move(made.value());
  if (est->made_->num_columns() !=
      static_cast<int>(est->model_col_owner_.size())) {
    return Status::IoError("AR model does not match the column mapping");
  }
  est->RegisterSamplerCounters();
  return est;
}

data::Table ArDensityEstimator::SchemaTable() const {
  data::Table schema("schema");
  for (size_t c = 0; c < columns_.size(); ++c) {
    data::Column col;
    col.name = c < column_names_.size() ? column_names_[c] : "";
    col.type = c < column_types_.size() ? column_types_[c]
                                        : data::ColumnType::kContinuous;
    schema.AddColumn(std::move(col));
  }
  return schema;
}

size_t ArDensityEstimator::SizeBytes() const {
  size_t bytes = made_->SizeBytes();
  for (const TableColumn& col : columns_) {
    if (col.kind == TableColumn::Kind::kReduced) {
      bytes += col.reducer->SizeBytes();
    }
  }
  return bytes;
}

int ArDensityEstimator::num_model_columns() const {
  return static_cast<int>(model_col_owner_.size());
}

int ArDensityEstimator::ReducedDomainSize(int table_col) const {
  const TableColumn& col = columns_[table_col];
  return col.kind == TableColumn::Kind::kReduced ? col.reducer->num_buckets()
                                                 : col.dict.size();
}

bool ArDensityEstimator::IsReduced(int table_col) const {
  return columns_[table_col].kind == TableColumn::Kind::kReduced;
}

std::optional<double> ArDensityEstimator::GmmNll(int table_col) const {
  const TableColumn& col = columns_[table_col];
  if (col.kind != TableColumn::Kind::kReduced ||
      options_.reducer_kind != ReducerKind::kGmm) {
    return std::nullopt;
  }
  const auto* reducer =
      static_cast<const bucketize::GmmReducer*>(col.reducer.get());
  return reducer->gmm().MeanNegLogLikelihood(train_values_[table_col]);
}

}  // namespace iam::core
