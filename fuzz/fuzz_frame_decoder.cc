// Fuzz harness for the serving wire format (serve/protocol.h). The frame
// decoder is the first code that touches bytes from an untrusted socket, so
// it must tolerate arbitrary input fed at arbitrary split points.
//
// Oracles, beyond "no sanitizer report":
//   * Incremental equivalence — feeding the input one byte at a time into an
//     accumulating buffer decodes the exact same frame sequence (and the
//     same accept/reject outcome) as decoding the whole buffer at once.
//     DecodeFrame must be a pure function of the buffer prefix.
//   * Re-encode identity — every accepted frame re-encodes to exactly the
//     bytes the decoder consumed for it.
//   * Adaptation-payload fixpoint — a kFeedback / kAppendData payload the
//     adapt codec accepts must re-encode canonically: parsing the encoding
//     of a parsed value reproduces that value exactly (adapt/feedback.h is
//     the next parser an accepted frame's bytes reach in the server).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "adapt/feedback.h"
#include "serve/protocol.h"

namespace {

using iam::Result;
using iam::serve::DecodeFrame;
using iam::serve::EncodeFrame;
using iam::serve::Frame;
using iam::serve::FrameType;

// The adapt payload codecs sit directly behind the frame decoder on the
// server's intake path; fuzz them on every accepted frame of their type.
void CheckAdaptPayloadFixpoint(const Frame& frame) {
  if (frame.type == FrameType::kFeedback) {
    const Result<iam::adapt::FeedbackPayload> parsed =
        iam::adapt::ParseFeedbackPayload(frame.payload);
    if (!parsed.ok()) return;  // clean rejection is a valid outcome
    const Result<iam::adapt::FeedbackPayload> reparsed =
        iam::adapt::ParseFeedbackPayload(
            iam::adapt::EncodeFeedbackPayload(*parsed));
    if (!reparsed.ok() || reparsed->seq != parsed->seq ||
        reparsed->actual != parsed->actual ||
        reparsed->predicates != parsed->predicates) {
      std::fprintf(stderr,
                   "fuzz_frame_decoder: oracle violated: feedback payload "
                   "is not an encode/parse fixpoint\n");
      std::abort();
    }
  } else if (frame.type == FrameType::kAppendData) {
    const Result<iam::adapt::AppendPayload> parsed =
        iam::adapt::ParseAppendPayload(frame.payload);
    if (!parsed.ok()) return;
    const Result<iam::adapt::AppendPayload> reparsed =
        iam::adapt::ParseAppendPayload(
            iam::adapt::EncodeAppendPayload(*parsed));
    if (!reparsed.ok() || reparsed->cols != parsed->cols ||
        reparsed->values != parsed->values) {
      std::fprintf(stderr,
                   "fuzz_frame_decoder: oracle violated: append payload is "
                   "not an encode/parse fixpoint\n");
      std::abort();
    }
  }
}

[[noreturn]] void Fail(const char* message) {
  std::fprintf(stderr, "fuzz_frame_decoder: oracle violated: %s\n", message);
  std::abort();
}

struct DecodeRun {
  std::vector<Frame> frames;
  bool rejected = false;
};

// Decodes frames from the front of `buffer` until it is exhausted, holds
// only a partial frame, or the decoder rejects the prefix as malformed.
DecodeRun DecodeAll(std::string buffer) {
  DecodeRun run;
  while (true) {
    Frame frame;
    const Result<size_t> consumed = DecodeFrame(buffer, &frame);
    if (!consumed.ok()) {
      run.rejected = true;
      return run;
    }
    if (*consumed == 0) return run;
    if (EncodeFrame(frame) != buffer.substr(0, *consumed)) {
      Fail("accepted frame does not re-encode to the consumed bytes");
    }
    CheckAdaptPayloadFixpoint(frame);
    run.frames.push_back(frame);
    buffer.erase(0, *consumed);
  }
}

// Same decode loop, but the input arrives one byte at a time — the
// adversarial-split-point schedule a slow or malicious client produces.
DecodeRun DecodeByteAtATime(std::string_view input) {
  DecodeRun run;
  std::string pending;
  for (const char byte : input) {
    pending.push_back(byte);
    while (true) {
      Frame frame;
      const Result<size_t> consumed = DecodeFrame(pending, &frame);
      if (!consumed.ok()) {
        run.rejected = true;
        return run;
      }
      if (*consumed == 0) break;
      run.frames.push_back(frame);
      pending.erase(0, *consumed);
    }
  }
  return run;
}

bool SameFrames(const std::vector<Frame>& a, const std::vector<Frame>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].type != b[i].type || a[i].payload != b[i].payload) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const DecodeRun one_shot = DecodeAll(std::string(input));
  const DecodeRun incremental = DecodeByteAtATime(input);
  if (one_shot.rejected != incremental.rejected) {
    Fail("one-shot and incremental decoding disagree on accept/reject");
  }
  if (!SameFrames(one_shot.frames, incremental.frames)) {
    Fail("one-shot and incremental decoding produced different frames");
  }
  return 0;
}
