// Corpus-replay driver: runs a harness's LLVMFuzzerTestOneInput over every
// file named on the command line (directories are enumerated one level deep,
// in sorted order for determinism). This is how gcc-only hosts — which
// cannot build libFuzzer — replay the committed corpora as ordinary ctest
// entries, so every input the clang fuzz configuration ever minimized stays
// a permanent tier-1 regression test.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return false;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const std::filesystem::directory_entry& entry :
           std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const std::filesystem::path& file : files) {
        if (!ReplayFile(file)) return 1;
        ++replayed;
      }
    } else {
      if (!ReplayFile(arg)) return 1;
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "no corpus inputs found (args: %d)\n", argc - 1);
    return 1;
  }
  std::printf("replayed %zu corpus inputs cleanly\n", replayed);
  return 0;
}
