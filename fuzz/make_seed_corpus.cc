// Writes the committed seed corpora under fuzz/corpus/<target>/. Run once
// (and re-run when a wire or file format changes):
//
//   ./iam_make_seed_corpus <repo>/fuzz/corpus
//
// Seeds are format-valid inputs plus the known-adversarial shapes the
// harness oracles were written against (truncated frames, declared-huge
// envelope headers) — the mutation engine explores outward from both.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ar/resmade.h"
#include "core/ar_density_estimator.h"
#include "serve/demo.h"
#include "serve/protocol.h"
#include "util/serialize.h"

namespace {

using iam::serve::AppendFrame;
using iam::serve::EncodeFrame;
using iam::serve::Frame;
using iam::serve::FrameType;

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::string& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  IAM_CHECK(out.good());
  std::printf("  %s/%s (%zu bytes)\n", dir.filename().string().c_str(),
              name.c_str(), bytes.size());
}

void MakeFrameDecoderSeeds(const std::filesystem::path& dir) {
  WriteSeed(dir, "01_estimate.bin",
            EncodeFrame({FrameType::kEstimate, "x >= 0.5 AND c = 3"}));
  WriteSeed(dir, "02_swap.bin",
            EncodeFrame({FrameType::kSwap, "/tmp/model.iam"}));
  WriteSeed(dir, "03_metrics.bin", EncodeFrame({FrameType::kMetrics, ""}));
  WriteSeed(dir, "04_estimate_ok.bin",
            EncodeFrame({FrameType::kEstimateOk,
                         iam::serve::EncodeEstimatePayload(0.125, 7)}));
  std::string pipelined;
  AppendFrame(&pipelined, {FrameType::kEstimate, "y BETWEEN -1 AND 9"});
  AppendFrame(&pipelined, {FrameType::kMetrics, ""});
  AppendFrame(&pipelined, {FrameType::kShutdown, ""});
  WriteSeed(dir, "05_pipelined.bin", pipelined);
  // Adversarial shapes the decoder must reject or park cleanly.
  const std::string valid = EncodeFrame({FrameType::kEstimate, "x = 7"});
  WriteSeed(dir, "06_truncated.bin", valid.substr(0, valid.size() - 3));
  WriteSeed(dir, "07_header_only.bin", valid.substr(0, 3));
  WriteSeed(dir, "08_zero_length.bin", std::string(4, '\0'));
  WriteSeed(dir, "09_oversized.bin", std::string(4, '\xff'));
  // Adaptation frames (DESIGN.md §18): both feedback grammar forms, an
  // append batch, and the adversarial variants — the payload codec behind
  // the frame decoder must reject these cleanly (truncated feedback,
  // non-finite values, short rows).
  WriteSeed(dir, "10_feedback_seq.bin",
            EncodeFrame({FrameType::kFeedback, "seq=42 actual=0.125"}));
  WriteSeed(dir, "11_feedback_inline.bin",
            EncodeFrame({FrameType::kFeedback,
                         "actual=0.25 where x >= 0.5 AND c = 3"}));
  WriteSeed(dir, "12_append.bin",
            EncodeFrame({FrameType::kAppendData,
                         "cols=3\n1.5,-2.25,3\n0.125,7,-1e3\n"}));
  const std::string feedback_wire =
      EncodeFrame({FrameType::kFeedback, "seq=42 actual=0.125"});
  WriteSeed(dir, "13_feedback_truncated.bin",
            feedback_wire.substr(0, feedback_wire.size() - 6));
  WriteSeed(dir, "14_feedback_bad_actual.bin",
            EncodeFrame({FrameType::kFeedback, "seq=42 actual=nan"}));
  WriteSeed(dir, "15_append_short_row.bin",
            EncodeFrame({FrameType::kAppendData, "cols=3\n1,2\n"}));
}

std::string EnvelopeSeed(uint8_t mode, const std::string& stream) {
  return std::string(1, static_cast<char>(mode)) + stream;
}

void MakeEnvelopeSeeds(const std::filesystem::path& dir,
                       const std::filesystem::path& scratch) {
  // Mode 0: raw envelope validation.
  std::ostringstream raw(std::ios::binary);
  iam::WriteEnvelope(raw, "IAMMODEL", 2, "seed payload bytes");
  WriteSeed(dir, "01_envelope_valid.bin", EnvelopeSeed(0, raw.str()));

  // A header that declares an 8 GiB payload the stream does not hold — the
  // regression shape for the chunked-read discipline (DESIGN.md §16): the
  // reader must fail with a clean Status without allocating the declared
  // size up front.
  std::ostringstream huge(std::ios::binary);
  huge.write("IAMMODEL", 8);
  iam::WritePod<uint32_t>(huge, 2);
  iam::WritePod<uint64_t>(huge, 8ULL << 30);
  iam::WritePod<uint64_t>(huge, 0);
  WriteSeed(dir, "02_envelope_huge_decl.bin", EnvelopeSeed(0, huge.str()));

  // Mode 1: full estimator snapshot (tiny demo model, fixed seed). Written
  // through Save() so the seed tracks the current format version.
  const std::filesystem::path model_path = scratch / "seed_model.iam";
  {
    const std::unique_ptr<iam::core::ArDensityEstimator> est =
        iam::serve::TrainDemoEstimator(/*rows=*/300, /*seed=*/5);
    IAM_CHECK(est != nullptr);
    const iam::Status saved = est->Save(model_path.string());
    IAM_CHECK(saved.ok());
  }
  std::ifstream model_in(model_path, std::ios::binary);
  const std::string model_bytes((std::istreambuf_iterator<char>(model_in)),
                                std::istreambuf_iterator<char>());
  IAM_CHECK(!model_bytes.empty());
  std::filesystem::remove(model_path);
  WriteSeed(dir, "03_estimator_snapshot.bin", EnvelopeSeed(1, model_bytes));
  WriteSeed(dir, "04_estimator_truncated.bin",
            EnvelopeSeed(1, model_bytes.substr(0, model_bytes.size() / 2)));

  // Mode 2: a tiny ResMade parameter blob.
  iam::ar::ResMadeConfig config;
  config.hidden_sizes = {8, 8};
  config.wildcard_prob = 0.0;
  iam::ar::ResMade resmade({4, 3, 5}, config, /*seed=*/1);
  std::ostringstream resmade_out(std::ios::binary);
  resmade.Serialize(resmade_out);
  WriteSeed(dir, "05_resmade_valid.bin", EnvelopeSeed(2, resmade_out.str()));
  const std::string resmade_bytes = resmade_out.str();
  WriteSeed(dir, "06_resmade_truncated.bin",
            EnvelopeSeed(2, resmade_bytes.substr(0, resmade_bytes.size() / 3)));
}

void MakeQueryParserSeeds(const std::filesystem::path& dir) {
  const std::vector<std::pair<std::string, std::string>> seeds = {
      {"01_range.txt", "x >= 0.5 AND y < 3"},
      {"02_between.txt", "x BETWEEN -1.5 AND 2.25 AND c = 3"},
      {"03_strict_categorical.txt", "c > 1 AND c < 3"},
      {"04_point.txt", "x = 7"},
      {"05_merge.txt", "y <= 1e9 AND y >= -1e9 AND y BETWEEN 0 AND 0.5"},
      {"06_precision.txt", "x >= 0.30000000000000004"},
      {"07_bad_operator.txt", "x >< 1"},
      {"08_dangling.txt", "x BETWEEN 1 AND"},
      {"09_unknown_column.txt", "q = 1"},
  };
  for (const auto& [name, text] : seeds) WriteSeed(dir, name, text);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-output-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  for (const char* target : {"frame_decoder", "envelope", "query_parser"}) {
    std::filesystem::create_directories(root / target);
  }
  MakeFrameDecoderSeeds(root / "frame_decoder");
  MakeEnvelopeSeeds(root / "envelope", root);
  MakeQueryParserSeeds(root / "query_parser");
  std::printf("seed corpora written under %s\n", root.string().c_str());
  return 0;
}
