// Fuzz harness for the predicate grammar (query/parser.h) — the text payload
// of every kEstimate frame, i.e. attacker-controlled input on the serving
// path.
//
// Oracles, beyond "no sanitizer report":
//   * Round trip — for accepted text, ParsePredicates(ToString(q)) succeeds
//     and yields the same query (parser.h documents this as the wire
//     contract of the serving layer).
//   * Print fixpoint — printing the reparsed query reproduces the printed
//     text exactly.
// An accepted query that prints empty must be genuinely unconstrained
// (every bound infinite); the grammar has no empty query, so reparsing is
// skipped for it.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/table.h"
#include "fuzz_table.h"
#include "query/parser.h"
#include "query/query.h"
#include "util/status.h"

namespace {

using iam::Result;
using iam::query::ParsePredicates;
using iam::query::Query;
using iam::query::ToString;

[[noreturn]] void Fail(const char* message, const std::string& text) {
  std::fprintf(stderr, "fuzz_query_parser: oracle violated: %s\n  input: %s\n",
               message, text.c_str());
  std::abort();
}

// Value equality (not bitwise): -0.0 == 0.0 is fine, and NaN bounds cannot
// occur — the parser's max/min interval narrowing never adopts a NaN
// literal. Guarded anyway so a future parser change fails loudly here.
bool SameQuery(const Query& a, const Query& b) {
  if (a.predicates.size() != b.predicates.size()) return false;
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    if (a.predicates[i].column != b.predicates[i].column ||
        a.predicates[i].lo != b.predicates[i].lo ||
        a.predicates[i].hi != b.predicates[i].hi) {
      return false;
    }
  }
  return true;
}

bool HasNanBound(const Query& q) {
  for (const iam::query::Predicate& p : q.predicates) {
    if (std::isnan(p.lo) || std::isnan(p.hi)) return true;
  }
  return false;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const iam::data::Table table = iam::fuzz::MakeFuzzTable();
  const std::string text(reinterpret_cast<const char*>(data), size);

  const Result<Query> parsed = ParsePredicates(table, text);
  if (!parsed.ok()) return 0;

  const std::string printed = ToString(table, *parsed);
  if (printed.empty()) {
    for (const iam::query::Predicate& p : parsed->predicates) {
      if (std::isfinite(p.lo) || std::isfinite(p.hi)) {
        Fail("constrained query printed as empty", text);
      }
    }
    return 0;
  }

  const Result<Query> reparsed = ParsePredicates(table, printed);
  if (!reparsed.ok()) Fail("printer output rejected by parser", printed);

  if (ToString(table, *reparsed) != printed) {
    Fail("print is not a fixpoint", printed);
  }
  if (!HasNanBound(*parsed) && !SameQuery(*parsed, *reparsed)) {
    Fail("round trip changed the query", text);
  }
  return 0;
}
