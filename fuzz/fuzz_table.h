#ifndef IAM_FUZZ_FUZZ_TABLE_H_
#define IAM_FUZZ_FUZZ_TABLE_H_

#include <utility>

#include "data/table.h"

namespace iam::fuzz {

// Fixed schema the query-parser harness parses against. The seed corpus in
// fuzz/corpus/query_parser/ is written in terms of these column names, so
// the schema must stay stable (extending it is fine; renaming is not).
inline data::Table MakeFuzzTable() {
  data::Table table("fuzz");
  data::Column x;
  x.name = "x";
  x.type = data::ColumnType::kContinuous;
  x.values = {0.0, 1.5, -2.25, 7.0};
  table.AddColumn(std::move(x));
  data::Column y;
  y.name = "y";
  y.type = data::ColumnType::kContinuous;
  y.values = {-1.0, 0.5, 3.25, 9.0};
  table.AddColumn(std::move(y));
  data::Column c;
  c.name = "c";
  c.type = data::ColumnType::kCategorical;
  c.values = {0.0, 1.0, 2.0, 3.0};
  table.AddColumn(std::move(c));
  return table;
}

}  // namespace iam::fuzz

#endif  // IAM_FUZZ_FUZZ_TABLE_H_
