// Fuzz harness for the persisted-model input surface: the checksummed
// envelope (util/serialize.h) and the two deserializers layered on it —
// core::ArDensityEstimator::LoadFromStream (the serving hot-swap path, which
// reads a path received over the wire and deserializes whatever it finds)
// and ar::ResMade::Deserialize.
//
// The first input byte selects the entry point; the rest is the stream.
// Oracles, beyond "no sanitizer report / no OOM on a declared-huge header":
//   * Envelope round trip — a payload that validates re-validates after
//     being re-written through WriteEnvelope, bit-identically.
//   * ResMade round trip — a model that deserializes re-serializes to a
//     stream that deserializes again, with the same shape.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "ar/resmade.h"
#include "core/ar_density_estimator.h"
#include "util/serialize.h"
#include "util/status.h"

namespace {

[[noreturn]] void Fail(const char* message) {
  std::fprintf(stderr, "fuzz_envelope: oracle violated: %s\n", message);
  std::abort();
}

void FuzzRawEnvelope(std::istream& in) {
  uint32_t version = 0;
  const iam::Result<std::string> payload =
      iam::ReadEnvelope(in, "IAMMODEL", 2, &version);
  if (!payload.ok()) return;
  std::stringstream again(std::ios::in | std::ios::out | std::ios::binary);
  iam::WriteEnvelope(again, "IAMMODEL", version, *payload);
  const iam::Result<std::string> reread =
      iam::ReadEnvelope(again, "IAMMODEL", 2);
  if (!reread.ok() || *reread != *payload) {
    Fail("validated envelope did not round-trip");
  }
}

void FuzzEstimatorLoad(std::istream& in) {
  const iam::Result<std::unique_ptr<iam::core::ArDensityEstimator>> loaded =
      iam::core::ArDensityEstimator::LoadFromStream(in);
  // Arbitrary bytes essentially never form a valid checksummed model; the
  // value of this mode is that rejection is a clean Status on every path
  // (fields validated before use, allocations bounded by bytes actually
  // present). Mutations of the committed valid-model seed exercise the
  // deep per-field validation behind an intact digest.
  (void)loaded;
}

void FuzzResMadeDeserialize(std::istream& in) {
  const iam::Result<std::unique_ptr<iam::ar::ResMade>> model =
      iam::ar::ResMade::Deserialize(in);
  if (!model.ok()) return;
  std::stringstream again(std::ios::in | std::ios::out | std::ios::binary);
  (*model)->Serialize(again);
  const iam::Result<std::unique_ptr<iam::ar::ResMade>> reloaded =
      iam::ar::ResMade::Deserialize(again);
  if (!reloaded.ok()) Fail("accepted ResMade did not re-deserialize");
  if ((*reloaded)->num_columns() != (*model)->num_columns() ||
      (*reloaded)->ParameterCount() != (*model)->ParameterCount()) {
    Fail("ResMade round trip changed the model shape");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t mode = data[0] % 3;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data + 1), size - 1),
      std::ios::binary);
  switch (mode) {
    case 0:
      FuzzRawEnvelope(in);
      break;
    case 1:
      FuzzEstimatorLoad(in);
      break;
    default:
      FuzzResMadeDeserialize(in);
      break;
  }
  return 0;
}
